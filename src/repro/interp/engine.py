"""The flat execution engine: register-compiled dispatch.

A drop-in :class:`~repro.interp.interpreter.Interpreter` subclass that
replaces the tree-walking ``_run`` with a loop over
:class:`~repro.interp.compile.CompiledFunction` instruction tuples:

- dispatch is one integer compare chain over pre-ordered hot opcodes
  plus an opcode-indexed handler table for the cold ones — no
  ``isinstance``;
- operands are ``regs[slot]`` list reads — no per-operand dict hash;
- steps, cycles, and per-kind cost counts accumulate in locals / a
  dense list and fold back into the interpreter fields in a ``finally``
  — no attribute traffic on the hot path.

Everything observable is **byte-identical** to the reference engine:
trace events (including stack captures — caller frames expose the call
instruction, the active frame the executing instruction), cost cycles
and counts, execution results, error messages and their timing (the
fell-off-block check still precedes step accounting; fuel still charges
the step first), the revalidation recorder's per-segment iid sets, and
snapshot capture points.  The differential suite
(``tests/test_engine_differential.py``) enforces this corpus-wide.

One documented divergence: the reference engine raises ``undefined
value`` the moment an instruction *reads* a value that was never
computed, even if the result is never used in an observable way.  The
flat engine stores ``None`` in never-written registers, so most
arithmetic on an undefined value raises ``TypeError`` at the same
instruction — which the loop translates back into the reference
engine's ``InterpreterError`` — but an undefined value flowing only
through comparisons/branches is silently treated as absent.  The
verifier's definition-before-use check rejects such programs, and every
in-tree producer runs it; programs that bypass the verifier should use
``engine="reference"``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import FuelExhausted, InterpreterError, TrapError
from ..ir.function import Function
from ..ir.opcodes import (
    NUM_OPCODES,
    OP_ALLOCA,
    OP_ADD,
    OP_AND,
    OP_BR,
    OP_CALL,
    OP_CAST,
    OP_FELL_OFF,
    OP_FENCE,
    OP_FLUSH,
    OP_GEP,
    OP_ICMP_EQ,
    OP_ICMP_NE,
    OP_ICMP_UGE,
    OP_ICMP_UGT,
    OP_ICMP_ULE,
    OP_ICMP_ULT,
    OP_JMP,
    OP_LOAD,
    OP_LSHR,
    OP_MUL,
    OP_OR,
    OP_RET,
    OP_SELECT,
    OP_SHL,
    OP_STORE,
    OP_SUB,
    OP_TRAP,
    OP_UDIV,
    OP_UREM,
    OP_XOR,
)
from ..trace.events import StackFrame
from .compile import (
    CALL_DECLARATION,
    CALL_INTRINSIC,
    CALL_MODULE,
    CompiledFunction,
    CompiledProgram,
    cached_program,
)
from .costs import KIND_INDEX
from .interpreter import Interpreter

_U64 = (1 << 64) - 1

_K_LOAD = KIND_INDEX["load"]
_K_STORE = KIND_INDEX["store"]
_K_ARITH = KIND_INDEX["arith"]
_K_COMPARE = KIND_INDEX["compare"]
_K_BRANCH = KIND_INDEX["branch"]
_K_CALL = KIND_INDEX["call"]
_K_RET = KIND_INDEX["ret"]
_K_ALLOCA = KIND_INDEX["alloca"]
_K_GEP = KIND_INDEX["gep"]
_K_SELECT = KIND_INDEX["select"]
_K_CAST = KIND_INDEX["cast"]
_K_INTRINSIC = KIND_INDEX["intrinsic"]
_K_FLUSH = KIND_INDEX["flush"]
_K_FENCE = KIND_INDEX["fence"]


class _LinkedFunction:
    """A :class:`CompiledFunction` bound to one machine: the frame
    template has this machine's global addresses filled in."""

    __slots__ = ("cf", "name", "code", "insts", "template", "arg_masks")

    def __init__(self, cf: CompiledFunction, global_addrs: Dict[str, int]):
        self.cf = cf
        self.name = cf.name
        self.code = cf.code
        self.insts = cf.insts
        template = list(cf.base_template)
        for slot, gname in cf.global_slots:
            template[slot] = global_addrs[gname]
        self.template = template
        self.arg_masks = cf.arg_masks


# Flat frame layout (a plain list for cheap mutation):
#   [linked_fn, regs, pc, ret_dst, ret_mask, stack_mark]
_F_FN = 0
_F_REGS = 1
_F_PC = 2
_F_RET_DST = 3
_F_RET_MASK = 4
_F_MARK = 5


class FlatEngine(Interpreter):
    """Register-compiled interpreter (the default engine).

    Accepts every :class:`Interpreter` constructor argument, plus
    ``program_provider``: a zero-argument callable returning the
    :class:`CompiledProgram` to execute (defaults to the shared
    :func:`~repro.interp.compile.cached_program` cache; the analysis
    manager's ``compiled_program`` key plugs in here).
    """

    def __init__(
        self,
        module,
        machine=None,
        cost_model=None,
        fuel: int = 50_000_000,
        record_volatile_stores: bool = False,
        metrics=None,
        run_recorder=None,
        program_provider: Optional[Callable[[], CompiledProgram]] = None,
    ):
        super().__init__(
            module,
            machine=machine,
            cost_model=cost_model,
            fuel=fuel,
            record_volatile_stores=record_volatile_stores,
            metrics=metrics,
            run_recorder=run_recorder,
        )
        self._program_provider = program_provider or (
            lambda: cached_program(self.module)
        )
        self._program: Optional[CompiledProgram] = None
        self._linked: Dict[str, _LinkedFunction] = {}
        self._cold = _COLD_HANDLERS
        self._relink()

    # -- linking ---------------------------------------------------------------

    def _relink(self) -> None:
        """(Re)compile + bind global addresses for the current epoch.

        Links lazily reuse: a function whose CompiledFunction object
        survived the incremental recompile keeps its linked form.
        """
        program = self._program_provider()
        previous = self._linked
        linked: Dict[str, _LinkedFunction] = {}
        global_addrs = self.machine.global_addrs
        for name, cf in program.functions.items():
            old = previous.get(name)
            if old is not None and old.cf is cf:
                linked[name] = old
            else:
                linked[name] = _LinkedFunction(cf, global_addrs)
        self._program = program
        self._linked = linked

    # -- stack capture ----------------------------------------------------------

    def _capture_stack(self) -> Tuple[StackFrame, ...]:
        frames = []
        for frame in self.frames:
            lf = frame[_F_FN]
            instr = lf.insts[frame[_F_PC]]
            if instr is None:
                continue
            frames.append(StackFrame(lf.name, instr.iid, instr.loc))
        return tuple(frames)

    def current_iid(self) -> int:
        if self.frames:
            frame = self.frames[-1]
            instr = frame[_F_FN].insts[frame[_F_PC]]
            if instr is not None:
                return instr.iid
        return 0

    # -- frame management -------------------------------------------------------

    def _push_frame(self, fn: Function, args: List[int]) -> None:
        if len(self.frames) > 512:
            raise InterpreterError("call stack overflow (depth > 512)")
        lf = self._linked.get(fn.name)
        if lf is None:
            # Only declarations are unlinked; raise the same IRError the
            # reference engine's Frame() constructor does.
            fn.entry
            raise InterpreterError(f"@{fn.name} is not linked")
        regs = lf.template.copy()
        for index, mask in enumerate(lf.arg_masks):
            if index < len(args):
                regs[index] = args[index] & mask
        self.frames.append(
            [lf, regs, 0, -1, 0, self.machine.space.stack_mark()]
        )

    def _pop_frame(self) -> None:
        frame = self.frames.pop()
        self.machine.space.stack_release(frame[_F_MARK])

    # -- main loop --------------------------------------------------------------

    def _run(self, fn: Function, args: List[int]) -> int:
        if self._program.epoch != self.module.epoch:
            self._relink()
        self._push_frame(fn, args)

        # Hot locals: every machine/cost object and model constant the
        # loop touches, bound once per entry-point call.
        frames = self.frames
        base_depth = len(frames) - 1
        machine = self.machine
        space = machine.space
        cache = machine.cache
        recorder = machine.recorder
        read_int = space.read_int
        write_int = space.write_int
        is_pm = space.is_pm
        alloc_stack = space.alloc_stack
        stack_mark = space.stack_mark
        stack_release = space.stack_release
        linked = self._linked
        costs = self.costs
        dense = costs._dense
        model = costs.model
        m_load = model.load
        m_store = model.store
        m_store_pm = model.store + model.pm_store_extra
        m_arith = model.arith
        m_compare = model.compare
        m_branch = model.branch
        m_call = model.call
        m_ret = model.ret
        m_alloca = model.alloca
        m_gep = model.gep
        m_intrinsic = model.intrinsic
        m_flush = model.flush
        m_flush_clean = model.flush_clean
        m_clflush_serial = model.clflush_serial
        m_fence = model.fence
        m_fence_per_line = model.fence_per_line
        fuel = self.fuel
        seg_iids = self._seg_iids
        run_rec = self._run_recorder
        trace_events = recorder.trace.events
        steps = self.steps
        cycles = costs.cycles
        cold = self._cold

        frame = frames[-1]
        lf = frame[_F_FN]
        regs = frame[_F_REGS]
        code = lf.code
        pc = 0
        return_value = 0

        try:
            while True:
                inst = code[pc]
                op = inst[0]
                if op == OP_FELL_OFF:
                    # Checked before step accounting, like the
                    # tree-walker's fell-off-block guard.
                    raise InterpreterError(
                        f"fell off block {inst[2]} in @{lf.name}"
                    )
                steps += 1
                if steps > fuel:
                    raise FuelExhausted(
                        f"exceeded fuel of {fuel} instructions"
                    )
                if seg_iids is not None:
                    seg_iids.add(inst[1])

                if op == OP_LOAD:
                    regs[inst[2]] = read_int(regs[inst[3]], inst[4])
                    dense[_K_LOAD] += 1
                    cycles += m_load
                    pc += 1
                elif op == OP_GEP:
                    regs[inst[2]] = (regs[inst[3]] + regs[inst[4]]) & _U64
                    dense[_K_GEP] += 1
                    cycles += m_gep
                    pc += 1
                elif op == OP_STORE:
                    frame[_F_PC] = pc
                    value = regs[inst[2]]
                    addr = regs[inst[3]]
                    size = inst[4]
                    write_int(addr, size, value)
                    if is_pm(addr):
                        nontemporal = inst[5]
                        event = recorder.record_store(
                            addr, size, "pm", nontemporal=nontemporal
                        )
                        if nontemporal:
                            cache.on_nt_store(addr, size, event.seq)
                        else:
                            cache.on_store(addr, size, event.seq)
                        cycles += m_store_pm
                    else:
                        recorder.record_store(addr, size, "vol")
                        cycles += m_store
                    dense[_K_STORE] += 1
                    pc += 1
                elif op == OP_ADD:
                    regs[inst[2]] = (regs[inst[3]] + regs[inst[4]]) & inst[5]
                    dense[_K_ARITH] += 1
                    cycles += m_arith
                    pc += 1
                elif OP_ICMP_EQ <= op <= OP_ICMP_UGE:
                    lhs = regs[inst[3]]
                    rhs = regs[inst[4]]
                    if op == OP_ICMP_EQ:
                        result = lhs == rhs
                    elif op == OP_ICMP_NE:
                        result = lhs != rhs
                    elif op == OP_ICMP_ULT:
                        result = lhs < rhs
                    elif op == OP_ICMP_ULE:
                        result = lhs <= rhs
                    elif op == OP_ICMP_UGT:
                        result = lhs > rhs
                    else:
                        result = lhs >= rhs
                    regs[inst[2]] = 1 if result else 0
                    dense[_K_COMPARE] += 1
                    cycles += m_compare
                    pc += 1
                elif op == OP_BR:
                    pc = inst[3] if regs[inst[2]] else inst[4]
                    dense[_K_BRANCH] += 1
                    cycles += m_branch
                elif op == OP_JMP:
                    pc = inst[2]
                    dense[_K_BRANCH] += 1
                    cycles += m_branch
                elif op == OP_SUB:
                    regs[inst[2]] = (regs[inst[3]] - regs[inst[4]]) & inst[5]
                    dense[_K_ARITH] += 1
                    cycles += m_arith
                    pc += 1
                elif op == OP_CALL:
                    frame[_F_PC] = pc
                    kind = inst[6]
                    if kind == CALL_MODULE:
                        dense[_K_CALL] += 1
                        cycles += m_call
                        if len(frames) > 512:
                            raise InterpreterError(
                                "call stack overflow (depth > 512)"
                            )
                        callee = linked[inst[4]]
                        callee_regs = callee.template.copy()
                        arg_slots = inst[3]
                        for index, mask in enumerate(callee.arg_masks):
                            if index < len(arg_slots):
                                callee_regs[index] = (
                                    regs[arg_slots[index]] & mask
                                )
                        frame = [
                            callee,
                            callee_regs,
                            0,
                            inst[2],
                            inst[5],
                            stack_mark(),
                        ]
                        if run_rec is not None:
                            run_rec.enter_callee(
                                inst[1],
                                len(trace_events),
                                len(recorder.vol_ops),
                                len(frames),
                            )
                        frames.append(frame)
                        lf = callee
                        regs = callee_regs
                        code = callee.code
                        pc = 0
                    elif kind == CALL_INTRINSIC:
                        dense[_K_INTRINSIC] += 1
                        cycles += m_intrinsic
                        result = inst[7](
                            self, [regs[s] for s in inst[3]]
                        )
                        dst = inst[2]
                        if dst >= 0:
                            regs[dst] = result & inst[5]
                        pc += 1
                    elif kind == CALL_DECLARATION:
                        raise InterpreterError(
                            f"call to declaration @{inst[4]}"
                        )
                    else:
                        raise InterpreterError(
                            f"call to unknown function @{inst[4]}"
                        )
                elif op == OP_RET:
                    value_slot = inst[2]
                    value = regs[value_slot] if value_slot >= 0 else 0
                    done = frames.pop()
                    stack_release(done[_F_MARK])
                    dense[_K_RET] += 1
                    cycles += m_ret
                    if len(frames) > base_depth:
                        if run_rec is not None:
                            run_rec.exit_callee(
                                len(trace_events), len(recorder.vol_ops)
                            )
                        frame = frames[-1]
                        lf = frame[_F_FN]
                        regs = frame[_F_REGS]
                        code = lf.code
                        ret_dst = done[_F_RET_DST]
                        if ret_dst >= 0:
                            regs[ret_dst] = value & done[_F_RET_MASK]
                        pc = frame[_F_PC] + 1
                    else:
                        return_value = value
                        break
                elif op == OP_FLUSH:
                    frame[_F_PC] = pc
                    addr = regs[inst[2]]
                    if is_pm(addr):
                        kind = inst[3]
                        status = cache.on_flush(addr, kind)
                        recorder.record_flush(
                            addr, addr & ~63, kind, status != "redundant"
                        )
                        if status == "writeback":
                            cycles += m_flush
                            if inst[4]:
                                cycles += m_clflush_serial
                        else:
                            cycles += m_flush_clean
                    else:
                        machine.volatile_flushes += 1
                        if recorder.record_vol_ops:
                            recorder.note_vol_flush()
                        cycles += m_flush
                    dense[_K_FLUSH] += 1
                    pc += 1
                elif op == OP_FENCE:
                    frame[_F_PC] = pc
                    completed = cache.on_fence(inst[2])
                    recorder.record_fence(inst[2])
                    dense[_K_FENCE] += 1
                    cycles += m_fence + m_fence_per_line * len(completed)
                    pc += 1
                elif op == OP_ALLOCA:
                    regs[inst[2]] = alloc_stack(inst[3])
                    dense[_K_ALLOCA] += 1
                    cycles += m_alloca
                    pc += 1
                else:
                    kind_index, cost = cold[op](self, inst, regs, lf, pc)
                    dense[kind_index] += 1
                    cycles += cost
                    pc += 1
        except BaseException as exc:
            if len(frames) > base_depth:
                frames[-1][_F_PC] = pc
            if isinstance(exc, TypeError):
                self._translate_undefined(lf, regs, pc)
            raise
        finally:
            self.steps = steps
            costs.cycles = cycles

        return return_value

    def _translate_undefined(self, lf: _LinkedFunction, regs, pc: int) -> None:
        """Map a ``TypeError`` from a ``None`` register read onto the
        reference engine's ``undefined value`` error (best effort — a
        genuine TypeError from e.g. an intrinsic re-raises unchanged)."""
        instr = lf.insts[pc]
        if instr is None:
            return
        slots = lf.cf.slots
        for operand in instr.operands:
            slot = slots.get(operand)
            if slot is not None and regs[slot] is None:
                raise InterpreterError(
                    f"undefined value {operand.short()} in @{lf.name}"
                ) from None


# -- cold handlers ----------------------------------------------------------
# Signature: (engine, inst, regs, linked_fn, pc) -> (kind_index, cost).
# The loop applies the count/cycle charge and the pc increment.


def _h_mul(self, inst, regs, lf, pc):
    regs[inst[2]] = (regs[inst[3]] * regs[inst[4]]) & inst[5]
    return _K_ARITH, self.costs.model.arith


def _h_udiv(self, inst, regs, lf, pc):
    rhs = regs[inst[4]]
    if rhs == 0:
        raise TrapError(f"division by zero at {lf.insts[pc].loc}")
    regs[inst[2]] = (regs[inst[3]] // rhs) & inst[5]
    return _K_ARITH, self.costs.model.arith


def _h_urem(self, inst, regs, lf, pc):
    rhs = regs[inst[4]]
    if rhs == 0:
        raise TrapError(f"remainder by zero at {lf.insts[pc].loc}")
    regs[inst[2]] = (regs[inst[3]] % rhs) & inst[5]
    return _K_ARITH, self.costs.model.arith


def _h_and(self, inst, regs, lf, pc):
    regs[inst[2]] = (regs[inst[3]] & regs[inst[4]]) & inst[5]
    return _K_ARITH, self.costs.model.arith


def _h_or(self, inst, regs, lf, pc):
    regs[inst[2]] = (regs[inst[3]] | regs[inst[4]]) & inst[5]
    return _K_ARITH, self.costs.model.arith


def _h_xor(self, inst, regs, lf, pc):
    regs[inst[2]] = (regs[inst[3]] ^ regs[inst[4]]) & inst[5]
    return _K_ARITH, self.costs.model.arith


def _h_shl(self, inst, regs, lf, pc):
    regs[inst[2]] = (regs[inst[3]] << (regs[inst[4]] & 63)) & inst[5]
    return _K_ARITH, self.costs.model.arith


def _h_lshr(self, inst, regs, lf, pc):
    regs[inst[2]] = (regs[inst[3]] >> (regs[inst[4]] & 63)) & inst[5]
    return _K_ARITH, self.costs.model.arith


def _h_select(self, inst, regs, lf, pc):
    regs[inst[2]] = regs[inst[4]] if regs[inst[3]] else regs[inst[5]]
    return _K_SELECT, self.costs.model.select


def _h_cast(self, inst, regs, lf, pc):
    regs[inst[2]] = regs[inst[3]] & inst[4]
    return _K_CAST, self.costs.model.cast


def _h_trap(self, inst, regs, lf, pc):
    raise TrapError(f"trap at {lf.insts[pc].loc} in @{lf.name}")


def _h_unreachable(self, inst, regs, lf, pc):  # pragma: no cover
    raise InterpreterError(f"flat engine cannot execute opcode {inst[0]}")


_COLD_HANDLERS = [_h_unreachable] * NUM_OPCODES
_COLD_HANDLERS[OP_MUL] = _h_mul
_COLD_HANDLERS[OP_UDIV] = _h_udiv
_COLD_HANDLERS[OP_UREM] = _h_urem
_COLD_HANDLERS[OP_AND] = _h_and
_COLD_HANDLERS[OP_OR] = _h_or
_COLD_HANDLERS[OP_XOR] = _h_xor
_COLD_HANDLERS[OP_SHL] = _h_shl
_COLD_HANDLERS[OP_LSHR] = _h_lshr
_COLD_HANDLERS[OP_SELECT] = _h_select
_COLD_HANDLERS[OP_CAST] = _h_cast
_COLD_HANDLERS[OP_TRAP] = _h_trap
_COLD_HANDLERS = tuple(_COLD_HANDLERS)
