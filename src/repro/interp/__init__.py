"""IR execution: interpreter, machine state, cost model, intrinsics.

Two engines execute the same IR with byte-identical observable behavior:

- ``"flat"`` (:class:`FlatEngine`, the default) — register-compiled
  dispatch over flat opcode tuples (see :mod:`repro.interp.compile` and
  :mod:`repro.interp.engine`);
- ``"reference"`` (:class:`Interpreter`) — the tree-walking reference
  implementation, kept as the semantic oracle and escape hatch
  (``--engine reference`` on the CLI).

:func:`make_interpreter` is the construction point everything routes
through; the differential suite holds the two engines byte-identical.
"""

from .compile import (
    CompiledFunction,
    CompiledProgram,
    cached_program,
    compile_function,
    compile_module,
    function_signature,
)
from .costs import CostCounter, CostModel, KIND_ORDER
from .engine import FlatEngine
from .frame import Frame
from .interpreter import Allocation, ExecutionResult, Interpreter, Machine, run_module
from .intrinsics import SimulatedCrash, intrinsic_names, is_intrinsic

#: Valid engine kinds, in preference order.
ENGINES = ("flat", "reference")

_DEFAULT_ENGINE = "flat"


def get_default_engine() -> str:
    """The engine kind used when none is requested explicitly."""
    return _DEFAULT_ENGINE


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine kind (tests / tooling)."""
    global _DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (choose from {ENGINES})")
    _DEFAULT_ENGINE = engine


def engine_class(engine: str = None):
    """The interpreter class implementing ``engine`` (default kind when
    ``None``)."""
    kind = engine or _DEFAULT_ENGINE
    if kind == "flat":
        return FlatEngine
    if kind == "reference":
        return Interpreter
    raise ValueError(f"unknown engine {kind!r} (choose from {ENGINES})")


def make_interpreter(module, engine: str = None, **kwargs) -> Interpreter:
    """Construct an interpreter for ``module`` on the chosen engine.

    ``kwargs`` are forwarded to the engine constructor (``machine``,
    ``cost_model``, ``fuel``, ``metrics``, ``run_recorder``, ...); the
    flat-only ``program_provider`` kwarg is dropped for the reference
    engine so callers can pass it unconditionally.
    """
    cls = engine_class(engine)
    if cls is Interpreter:
        kwargs.pop("program_provider", None)
    return cls(module, **kwargs)


__all__ = [
    "Allocation",
    "cached_program",
    "compile_function",
    "compile_module",
    "CompiledFunction",
    "CompiledProgram",
    "CostCounter",
    "CostModel",
    "engine_class",
    "ENGINES",
    "ExecutionResult",
    "FlatEngine",
    "Frame",
    "function_signature",
    "get_default_engine",
    "Interpreter",
    "intrinsic_names",
    "is_intrinsic",
    "KIND_ORDER",
    "Machine",
    "make_interpreter",
    "run_module",
    "set_default_engine",
    "SimulatedCrash",
]
