"""Hippocrates: the paper's contribution — automated, provably-safe
repair of persistent-memory durability bugs.

Typical use::

    from repro.detect import pmemcheck_run
    from repro.core import Hippocrates

    detection, trace, interp = pmemcheck_run(module, driver)
    report = Hippocrates(module, trace, interp.machine).fix()
    # module now has every reported bug repaired
"""

from .fixes import (
    Fix,
    FixPlan,
    HoistedFix,
    InsertFenceAfterFlush,
    InsertFenceAfterStore,
    InsertFlush,
    InsertFlushAndFence,
    insert_covering_flushes,
)
from .heuristic import Candidate, HoistDecision, choose_fix_location, evaluate_candidates
from .hippocrates import (
    DOWNGRADE_CHAIN,
    HEURISTICS,
    FixReport,
    HeuristicDowngrade,
    Hippocrates,
    QuarantinedBug,
    fix_module,
)
from .intraprocedural import generate_intraprocedural_fixes
from .locate import Locator
from .reduction import reduce_fixes
from .subprogram import PM_SUFFIX, SubprogramTransformer, clone_function
from .transaction import FixTransaction
from .validate import assert_fixed, do_no_harm, observable_behavior, revalidate

__all__ = [
    "assert_fixed",
    "Candidate",
    "choose_fix_location",
    "clone_function",
    "do_no_harm",
    "DOWNGRADE_CHAIN",
    "evaluate_candidates",
    "Fix",
    "fix_module",
    "FixPlan",
    "FixReport",
    "FixTransaction",
    "generate_intraprocedural_fixes",
    "HeuristicDowngrade",
    "HEURISTICS",
    "Hippocrates",
    "HoistDecision",
    "HoistedFix",
    "QuarantinedBug",
    "InsertFenceAfterFlush",
    "InsertFenceAfterStore",
    "insert_covering_flushes",
    "InsertFlush",
    "InsertFlushAndFence",
    "Locator",
    "observable_behavior",
    "PM_SUFFIX",
    "reduce_fixes",
    "revalidate",
    "SubprogramTransformer",
]
