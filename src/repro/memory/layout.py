"""Simulated 64-bit address space with persistent and volatile regions.

The layout mirrors a PM-enabled process:

=============  ==================  =======================================
region         base address        contents
=============  ==================  =======================================
volatile heap  ``0x1000_0000``     ``vol_alloc`` allocations, vol globals
stack          ``0x7000_0000``     ``alloca`` frames (bump, per call)
PM pool        ``0x1_0000_0000``   ``pm_alloc`` allocations, pm globals
=============  ==================  =======================================

Addresses carry their region implicitly (by range), which is how the
durability checker and the Trace-AA classifier tell PM stores from
volatile stores — exactly the information pmemcheck derives from the
mapped PM file range.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import MemoryError_, SegmentationFault

#: Cache-line size in bytes (x86).
CACHE_LINE = 64

VOL_BASE = 0x1000_0000
STACK_BASE = 0x7000_0000
PM_BASE = 0x1_0000_0000

_DEFAULT_REGION_SIZE = 1 << 24  # 16 MiB per region


def line_of(addr: int) -> int:
    """The base address of the cache line containing ``addr``."""
    return addr & ~(CACHE_LINE - 1)


def lines_covering(addr: int, size: int) -> List[int]:
    """All cache-line base addresses touched by ``[addr, addr+size)``."""
    if size <= 0:
        return []
    first = line_of(addr)
    last = line_of(addr + size - 1)
    return list(range(first, last + 1, CACHE_LINE))


class Region:
    """A contiguous byte-addressable region with a bump allocator."""

    def __init__(self, name: str, base: int, size: int):
        self.name = name
        self.base = base
        self.size = size
        self.data = bytearray(size)
        self._brk = 0
        self._high_water = 0

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end

    def allocate(self, size: int, align: int = 8) -> int:
        """Bump-allocate ``size`` bytes, returning the address."""
        if size <= 0:
            raise MemoryError_(f"bad allocation size {size}")
        self._brk = (self._brk + align - 1) & ~(align - 1)
        if self._brk + size > self.size:
            raise MemoryError_(f"region {self.name!r} exhausted")
        addr = self.base + self._brk
        self._brk += size
        if self._brk > self._high_water:
            self._high_water = self._brk
        return addr

    @property
    def brk(self) -> int:
        """Current allocation watermark (offset from base)."""
        return self._brk

    def set_brk(self, brk: int) -> None:
        """Reset the watermark (used for stack frame pop)."""
        if brk < 0 or brk > self.size:
            raise MemoryError_(f"bad brk {brk} for region {self.name!r}")
        self._brk = brk

    @property
    def high_water(self) -> int:
        """Highest offset ever allocated or written.

        Bytes at or beyond this offset are zero by construction, which
        is what lets a machine snapshot copy only the live prefix of a
        region instead of all 16 MiB.
        """
        return self._high_water

    def note_high_water(self, offset: int) -> None:
        """Raise the high-water mark (snapshot restore)."""
        if offset > self._high_water:
            self._high_water = offset

    def reset_high_water(self, offset: int) -> None:
        """Set the high-water mark exactly (pooled snapshot restore).

        Unlike :meth:`note_high_water` this may *lower* the mark, so the
        caller must have re-established the invariant that every byte at
        or beyond ``offset`` is zero.
        """
        if offset < 0 or offset > self.size:
            raise MemoryError_(
                f"bad high-water {offset} for region {self.name!r}"
            )
        self._high_water = offset

    def reset(self) -> None:
        """Return the region to its freshly constructed state.

        Only the live prefix (up to the high-water mark) can be nonzero,
        so pooled reuse zeroes just that prefix instead of reallocating
        the full buffer.
        """
        high = self._high_water
        if high:
            self.data[:high] = bytes(high)
        self._brk = 0
        self._high_water = 0

    # -- raw byte access --------------------------------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        if not self.contains(addr, size):
            raise SegmentationFault(
                f"read of {size}B at {addr:#x} outside region {self.name!r}"
            )
        offset = addr - self.base
        return bytes(self.data[offset : offset + size])

    def write_bytes(self, addr: int, payload: bytes) -> None:
        if not self.contains(addr, len(payload)):
            raise SegmentationFault(
                f"write of {len(payload)}B at {addr:#x} outside region {self.name!r}"
            )
        offset = addr - self.base
        end = offset + len(payload)
        self.data[offset:end] = payload
        if end > self._high_water:
            self._high_water = end


class AddressSpace:
    """The whole simulated address space.

    Integer reads/writes are little-endian, matching x86.
    """

    def __init__(
        self,
        vol_size: int = _DEFAULT_REGION_SIZE,
        stack_size: int = _DEFAULT_REGION_SIZE,
        pm_size: int = _DEFAULT_REGION_SIZE,
    ):
        self.vol = Region("vol", VOL_BASE, vol_size)
        self.stack = Region("stack", STACK_BASE, stack_size)
        self.pm = Region("pm", PM_BASE, pm_size)
        self._regions = (self.vol, self.stack, self.pm)

    def reset(self) -> None:
        """Reset every region in place (pooled reuse)."""
        for region in self._regions:
            region.reset()

    # -- region queries ----------------------------------------------------------

    def region_of(self, addr: int, size: int = 1) -> Region:
        for region in self._regions:
            if region.contains(addr, size):
                return region
        raise SegmentationFault(f"access of {size}B at {addr:#x} is unmapped")

    def is_pm(self, addr: int) -> bool:
        """True if the address lies in the persistent region."""
        return self.pm.contains(addr)

    def space_of(self, addr: int) -> str:
        """``"pm"`` or ``"vol"`` (stack counts as volatile)."""
        return "pm" if self.is_pm(addr) else "vol"

    # -- allocation -----------------------------------------------------------------

    def alloc_vol(self, size: int, align: int = 8) -> int:
        return self.vol.allocate(size, align)

    def alloc_pm(self, size: int, align: int = 8) -> int:
        return self.pm.allocate(size, align)

    def alloc_stack(self, size: int, align: int = 8) -> int:
        return self.stack.allocate(size, align)

    def stack_mark(self) -> int:
        return self.stack.brk

    def stack_release(self, mark: int) -> None:
        self.stack.set_brk(mark)

    # -- typed access ------------------------------------------------------------------

    def read_int(self, addr: int, size: int) -> int:
        region = self.region_of(addr, size)
        return int.from_bytes(region.read_bytes(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        region = self.region_of(addr, size)
        region.write_bytes(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def read_bytes(self, addr: int, size: int) -> bytes:
        if size == 0:
            return b""
        return self.region_of(addr, size).read_bytes(addr, size)

    def write_bytes(self, addr: int, payload: bytes) -> None:
        if not payload:
            return
        self.region_of(addr, len(payload)).write_bytes(addr, payload)

    def copy(self, dst: int, src: int, size: int) -> None:
        self.write_bytes(dst, self.read_bytes(src, size))

    def pm_bounds(self) -> Tuple[int, int]:
        return self.pm.base, self.pm.end
