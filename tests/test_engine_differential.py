"""Two-engine differential: flat register-compiled vs tree-walking
reference.

The flat engine's contract is *byte-identity*: for any program —
corpus case or seeded random — detection traces, bug records, cost
cycles, per-opcode counts, observable output, error messages, and the
batch layer's canonical journaled records must be exactly the same on
both engines.  These tests diff all of it: per-case detect runs,
property-based random programs, the error paths (fuel, traps,
undefined values), the full repair pipeline per corpus case, and a
batch killed mid-run on the flat engine resumed against a
reference-engine baseline.
"""

from __future__ import annotations

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.corpus.bugs import all_cases
from repro.detect import pmemcheck_run
from repro.faultinject.resume import run_kill_resume
from repro.interp import ENGINES, make_interpreter
from repro.ir import I64, ModuleBuilder, PTR
from repro.supervisor import SupervisorConfig, run_batch
from repro.supervisor.tasks import corpus_tasks, execute_task

CASE_IDS = [case.case_id for case in all_cases()]


def _case(case_id):
    return next(c for c in all_cases() if c.case_id == case_id)


def _detect_fingerprint(module, drive, engine):
    """Everything observable about one detect run, as plain data."""
    detection, trace, interp = pmemcheck_run(module, drive, engine=engine)
    return {
        "bugs": [b.describe() for b in detection.bugs],
        "perf": [p.describe() for p in detection.perf],
        "events": list(trace.events),
        "steps": interp.steps,
        "cycles": interp.costs.cycles,
        "counts": dict(interp.costs.counts),
        "output": list(interp.output),
    }


# ---------------------------------------------------------------------------
# corpus detect runs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_corpus_detect_byte_identical(case_id):
    """Same module instance through both engines: every observable of
    the detect phase must agree exactly, event for event."""
    case = _case(case_id)
    module = case.build()
    flat = _detect_fingerprint(module, case.drive, "flat")
    reference = _detect_fingerprint(module, case.drive, "reference")
    assert len(flat["events"]) == len(reference["events"])
    for ours, theirs in zip(flat["events"], reference["events"]):
        assert ours == theirs
    for key in ("bugs", "perf", "steps", "cycles", "counts", "output"):
        assert flat[key] == reference[key], key


# ---------------------------------------------------------------------------
# property-based random programs
# ---------------------------------------------------------------------------

#: (persist?, slot, value, via_helper?) — mixes direct and
#: helper-mediated PM stores (the helper call exercises the flat
#: engine's inline frame push/pop) with per-slot persistence.
action = st.tuples(
    st.booleans(),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=1000),
    st.booleans(),
)


def build_random(actions):
    mb = ModuleBuilder("gen")
    helper = mb.function("set_slot", [("p", PTR), ("v", I64)], source_file="gen.c")
    helper.store(helper.function.args[1], helper.function.args[0])
    helper.ret()

    b = mb.function("main", [], I64, source_file="gen.c")
    base = b.call("pm_alloc", [256], PTR)
    vol = b.call("vol_alloc", [256], PTR)
    b.call("set_slot", [vol, 1])
    acc = b.alloca(8)
    b.store(0, acc)
    for persist, slot, value, via_helper in actions:
        target = b.gep(base, slot * 64)
        # spread the arithmetic opcodes through the program so the
        # differential exercises the binop/icmp/select encodings too
        mixed = b.add(b.mul(value, 3), b.binop("xor", value, slot))
        b.store(b.add(b.load(acc), mixed), acc)
        if via_helper:
            b.call("set_slot", [target, value])
        else:
            b.store(value, target)
        if persist:
            b.flush(target)
            b.fence()
    b.call("checkpoint", [])
    b.call("emit", [b.load(acc)])
    b.ret(0)
    return mb.module


def drive_main(interp):
    interp.call("main")


@settings(max_examples=40, deadline=None)
@given(actions=st.lists(action, min_size=1, max_size=10))
def test_random_programs_byte_identical(actions):
    module = build_random(actions)
    flat = _detect_fingerprint(module, drive_main, "flat")
    reference = _detect_fingerprint(module, drive_main, "reference")
    assert flat == reference


# ---------------------------------------------------------------------------
# error-path parity
# ---------------------------------------------------------------------------


def _run_both(module, entry, args, **kwargs):
    """Call ``entry`` on both engines; returns {engine: outcome} where
    an outcome is ("ok", result-ish) or ("err", type-name, message)."""
    outcomes = {}
    for engine in ENGINES:
        interp = make_interpreter(module, engine=engine, **kwargs)
        try:
            result = interp.call(entry, args)
            outcomes[engine] = ("ok", result.value, interp.steps)
        except Exception as exc:  # noqa: BLE001 - parity is the point
            outcomes[engine] = ("err", type(exc).__name__, str(exc), interp.steps)
    return outcomes


def test_division_by_zero_message_parity():
    mb = ModuleBuilder("divz")
    b = mb.function("main", [("d", I64)], I64, source_file="d.c")
    b.ret(b.binop("udiv", 10, b.function.args[0]))
    outcomes = _run_both(mb.module, "main", [0])
    assert outcomes["flat"] == outcomes["reference"]
    assert outcomes["flat"][0] == "err"
    assert "division by zero" in outcomes["flat"][2]


def test_fuel_exhaustion_parity():
    mb = ModuleBuilder("spin")
    b = mb.function("main", [], I64, source_file="s.c")
    loop = b.new_block("loop")
    b.jmp(loop)
    b.position_at_end(loop)
    b.jmp(loop)
    outcomes = _run_both(mb.module, "main", [], fuel=25)
    assert outcomes["flat"] == outcomes["reference"]
    assert outcomes["flat"][:3] == (
        "err",
        "FuelExhausted",
        "exceeded fuel of 25 instructions",
    )


def test_stack_overflow_parity():
    mb = ModuleBuilder("deep")
    b = mb.function("rec", [("n", I64)], I64, source_file="r.c")
    stop = b.new_block("stop")
    go = b.new_block("go")
    b.br(b.icmp("eq", b.function.args[0], 0), stop, go)
    b.position_at_end(stop)
    b.ret(0)
    b.position_at_end(go)
    b.ret(b.call("rec", [b.sub(b.function.args[0], 1)], I64))
    outcomes = _run_both(mb.module, "rec", [1 << 40])
    assert outcomes["flat"] == outcomes["reference"]
    assert outcomes["flat"][0] == "err"


def test_call_to_undefined_function_parity():
    mb = ModuleBuilder("missing")
    b = mb.function("main", [], I64, source_file="m.c")
    b.ret(b.call("no_such_fn", [], I64))
    outcomes = _run_both(mb.module, "main", [])
    assert outcomes["flat"] == outcomes["reference"]
    assert outcomes["flat"][:2] == ("err", "InterpreterError")


def test_top_level_entry_errors_match():
    """Unknown entry points and argument-count mismatches surface the
    same way regardless of engine."""
    mb = ModuleBuilder("entry")
    b = mb.function("main", [("x", I64)], I64, source_file="e.c")
    b.ret(b.function.args[0])
    for entry, args in (("nope", []), ("main", [])):
        errors = {}
        for engine in ENGINES:
            interp = make_interpreter(mb.module, engine=engine)
            with pytest.raises(Exception) as excinfo:
                interp.call(entry, args)
            errors[engine] = (type(excinfo.value).__name__, str(excinfo.value))
        assert errors["flat"] == errors["reference"], (entry, args)


# ---------------------------------------------------------------------------
# full pipeline + batch + kill/resume
# ---------------------------------------------------------------------------


def _task(case_id, engine):
    from repro.supervisor import RepairTask

    return RepairTask(
        task_id=case_id, kind="corpus", case_id=case_id, engine=engine
    )


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_pipeline_records_byte_identical_across_engines(case_id):
    """The journaled record — detection counts, fixes, do-no-harm
    verdicts, revalidation outcomes — must not depend on the engine."""
    flat = execute_task(_task(case_id, "flat")).record
    reference = execute_task(_task(case_id, "reference")).record
    assert json.dumps(flat, sort_keys=True) == json.dumps(
        reference, sort_keys=True
    )


BATCH_CASES = ["PMDK-452", "PMDK-940", "PMDK-447"]


def _fast_config():
    return SupervisorConfig(
        mode="inprocess", max_retries=1, backoff_base=0.0, task_timeout=600.0
    )


def test_batch_reports_byte_identical_across_engines(tmp_path):
    flat = run_batch(
        corpus_tasks(BATCH_CASES, engine="flat"),
        journal_path=str(tmp_path / "flat.journal"),
        config=_fast_config(),
    )
    reference = run_batch(
        corpus_tasks(BATCH_CASES, engine="reference"),
        journal_path=str(tmp_path / "ref.journal"),
        config=_fast_config(),
    )
    assert flat.canonical_json() == reference.canonical_json()


def test_kill_mid_flat_batch_resumes_to_reference_baseline(tmp_path):
    """The strongest cross-check: kill a flat-engine batch mid-task,
    resume it, and compare the canonical bytes against an uninterrupted
    reference-engine run of the same tasks."""
    baseline = run_batch(
        corpus_tasks(BATCH_CASES, engine="reference"),
        journal_path=str(tmp_path / "ref.journal"),
        config=_fast_config(),
    ).canonical_json()
    record = run_kill_resume(
        corpus_tasks(BATCH_CASES, engine="flat"),
        str(tmp_path / "kill-flat.journal"),
        boundary=4,
        baseline_bytes=baseline,
        torn=False,
    )
    assert record.ok, record.problems
