"""Resilience of the repair pipeline: quarantine, rollback, degraded
modes, budgets, and the do-no-harm diagnostics."""

from __future__ import annotations

import tracemalloc

import pytest

from conftest import build_listing5_module, drive_main
from repro.budget import Budget
from repro.core import (
    DOWNGRADE_CHAIN,
    FixTransaction,
    Hippocrates,
    assert_fixed,
    do_no_harm,
)
from repro.core.locate import Locator
from repro.detect import pmemcheck_run
from repro.errors import BudgetExceeded, LocateError, ValidationError
from repro.faultinject import FaultPlan, InjectedFault, install_faults
from repro.ir import I64, ModuleBuilder, PTR, format_module, verify_module


def build_two_bug_module():
    """Two independent missing-flush bugs on separate cache lines."""
    mb = ModuleBuilder("twobugs")
    b = mb.function("main", [], I64)
    pm = b.call("pm_alloc", [128], PTR)
    b.store(1, pm)
    b.store(2, b.gep(pm, 64))
    b.fence()
    b.call("checkpoint", [1])
    b.ret(0)
    return mb.module


class ExplodingLocator(Locator):
    """Fails the first store resolution, then behaves normally."""

    def __init__(self, module):
        super().__init__(module)
        self.calls = 0

    def locate_store(self, event):
        self.calls += 1
        if self.calls == 1:
            raise LocateError("debug info missing for this store")
        return super().locate_store(event)


# ---------------------------------------------------------------------------
# per-bug fault isolation
# ---------------------------------------------------------------------------


def test_locate_failure_quarantines_one_bug_fixes_the_rest():
    module = build_two_bug_module()
    detection, trace, interp = pmemcheck_run(module, drive_main)
    assert detection.bug_count == 2

    fixer = Hippocrates(module, trace, interp.machine)
    fixer.locator = ExplodingLocator(module)
    report = fixer.fix()

    assert report.bugs_quarantined == 1
    assert report.bugs_fixed == 1
    q = report.quarantined[0]
    assert q.phase == "locate"
    assert q.error_type == "LocateError"
    assert "debug info" in q.error
    assert "locate_store" in q.traceback  # the stack is preserved
    assert q.bug is not None
    assert "quarantined" in report.summary()

    after, _, _ = pmemcheck_run(module, drive_main)
    assert after.bug_count == 1  # only the quarantined bug remains


def test_keep_going_false_restores_fail_fast():
    module = build_two_bug_module()
    _, trace, interp = pmemcheck_run(module, drive_main)
    fixer = Hippocrates(module, trace, interp.machine, keep_going=False)
    fixer.locator = ExplodingLocator(module)
    with pytest.raises(LocateError):
        fixer.fix()


def test_zero_fault_report_is_unchanged_by_resilience_options():
    import re

    reports = []
    plans = []
    for keep_going in (True, False):
        module = build_listing5_module()
        _, trace, interp = pmemcheck_run(module, drive_main)
        fixer = Hippocrates(module, trace, interp.machine, keep_going=keep_going)
        plan = fixer.compute_fixes()
        # instruction iids are globally unique across module builds;
        # normalize them so only real plan differences can fail this
        plans.append(re.sub(r"#\d+", "#N", plan.describe()))
        reports.append(fixer.apply(plan).summary())
    # byte-identical plans and summaries: resilience must be invisible
    # on a clean run
    assert plans[0] == plans[1]
    assert reports[0] == reports[1]
    assert "quarantined" not in reports[0]
    assert "degraded" not in reports[0]


# ---------------------------------------------------------------------------
# transactional application
# ---------------------------------------------------------------------------


def test_transformer_fault_rolls_module_back_to_original_text():
    module = build_listing5_module()
    original_text = format_module(module)
    _, trace, interp = pmemcheck_run(module, drive_main)

    fixer = Hippocrates(module, trace, interp.machine)
    install_faults(fixer, FaultPlan("transformer", nth=1))
    report = fixer.fix()

    # Listing 5's only fix is interprocedural; its mid-clone failure
    # must leave the module byte-identical to the original.
    assert report.bugs_quarantined >= 1
    assert report.quarantined[0].phase == "apply"
    assert report.quarantined[0].error_type == "InjectedFault"
    assert report.fixes_applied == 0
    assert format_module(module) == original_text
    verify_module(module)


def test_mid_clone_fault_rolls_back_partial_clones():
    # nth=2 lets the first persistent clone land before the recursive
    # clone of its callee raises — the half-mutated case.
    module = build_listing5_module()
    original_text = format_module(module)
    _, trace, interp = pmemcheck_run(module, drive_main)

    fixer = Hippocrates(module, trace, interp.machine)
    install_faults(fixer, FaultPlan("transformer", nth=2))
    report = fixer.fix()

    if report.bugs_quarantined:  # the fault fired mid-fix
        assert format_module(module) == original_text
    verify_module(module)
    do_no_harm(build_listing5_module(), module, drive_main)


def test_fail_fast_apply_error_still_rolls_back():
    module = build_listing5_module()
    original_text = format_module(module)
    _, trace, interp = pmemcheck_run(module, drive_main)

    fixer = Hippocrates(module, trace, interp.machine, keep_going=False)
    install_faults(fixer, FaultPlan("transformer", nth=1))
    with pytest.raises(InjectedFault):
        fixer.fix()
    # even without quarantine the module is never left half-mutated
    assert format_module(module) == original_text


def test_fix_transaction_unit_rollback():
    module = build_two_bug_module()
    main = module.functions["main"]
    block = main.blocks[0]
    count_before = len(block.instructions)

    class Probe:
        color = "red"

    probe = Probe()
    txn = FixTransaction(module)
    txn.track_attr(probe, "color")
    probe.color = "blue"
    txn.rollback()
    assert probe.color == "red"
    assert len(block.instructions) == count_before
    # rollback is idempotent and commit after rollback is a no-op
    txn.rollback()
    txn.commit()


# ---------------------------------------------------------------------------
# degraded-mode heuristics
# ---------------------------------------------------------------------------


def test_classifier_failure_downgrades_full_to_trace():
    module = build_listing5_module()
    _, trace, interp = pmemcheck_run(module, drive_main)
    fixer = Hippocrates(module, trace, interp.machine)
    install_faults(fixer, FaultPlan("classifier", nth=1))
    report = fixer.fix()

    assert report.heuristic == "full"
    assert report.heuristic_effective == "trace"
    assert [d.to_mode for d in report.downgrades] == ["trace"]
    assert "InjectedFault" in report.downgrades[0].reason
    assert "(degraded to trace)" in report.summary()
    # Trace-AA produces the same hoisted repair (the paper's E7 result)
    assert report.interprocedural_count >= 1
    assert_fixed(module, drive_main)


def test_classifier_failure_without_machine_degrades_to_off():
    module = build_listing5_module()
    _, trace, _ = pmemcheck_run(module, drive_main)
    fixer = Hippocrates(module, trace, machine=None)  # Trace-AA unavailable
    install_faults(fixer, FaultPlan("classifier", nth=1))
    report = fixer.fix()

    assert report.heuristic_effective == "off"
    assert report.interprocedural_count == 0
    assert report.intraprocedural_count >= 1
    assert_fixed(module, drive_main)  # intraprocedural is always safe


def test_budget_exhaustion_walks_the_whole_downgrade_chain():
    module = build_listing5_module()
    _, trace, interp = pmemcheck_run(module, drive_main)
    fixer = Hippocrates(
        module, trace, interp.machine, analysis_budget=Budget(max_items=0)
    )
    report = fixer.fix()

    # full -> trace -> off: the same exhausted budget fails both analyses
    assert [(d.from_mode, d.to_mode) for d in report.downgrades] == [
        ("full", "trace"),
        ("trace", "off"),
    ]
    assert all("BudgetExceeded" in d.reason for d in report.downgrades)
    assert report.heuristic_effective == "off"
    assert report.interprocedural_count == 0
    assert_fixed(module, drive_main)


def test_downgrade_chain_terminates_at_off():
    assert DOWNGRADE_CHAIN["full"] == "trace"
    assert DOWNGRADE_CHAIN["trace"] == "off"
    assert "off" not in DOWNGRADE_CHAIN


# ---------------------------------------------------------------------------
# satellite fixes: tracemalloc leak, do_no_harm diagnostics
# ---------------------------------------------------------------------------


def test_measure_overhead_stops_tracemalloc_on_failure():
    module = build_two_bug_module()
    _, trace, interp = pmemcheck_run(module, drive_main)
    fixer = Hippocrates(module, trace, interp.machine, keep_going=False)
    fixer.locator = ExplodingLocator(module)
    assert not tracemalloc.is_tracing()
    with pytest.raises(LocateError):
        fixer.fix(measure_overhead=True)
    assert not tracemalloc.is_tracing()


def _emitting_module(values):
    mb = ModuleBuilder("emitter")
    b = mb.function("main", [], I64)
    for v in values:
        b.call("emit", [v])
    b.ret(0)
    return mb.module


def test_do_no_harm_reports_first_diverging_index():
    with pytest.raises(ValidationError) as info:
        do_no_harm(
            _emitting_module([1, 2, 3]), _emitting_module([1, 9, 3]), drive_main
        )
    message = str(info.value)
    assert "index 1" in message
    assert "2" in message and "9" in message
    assert "lengths 3 (before) vs 3 (after)" in message


def test_do_no_harm_reports_length_divergence():
    with pytest.raises(ValidationError) as info:
        do_no_harm(
            _emitting_module([1, 2]), _emitting_module([1, 2, 3]), drive_main
        )
    message = str(info.value)
    assert "lengths 2 (before) vs 3 (after)" in message


# ---------------------------------------------------------------------------
# budgets
# ---------------------------------------------------------------------------


def test_budget_try_charge_and_strict_charge():
    budget = Budget(max_items=2, label="probe")
    assert budget.try_charge()
    assert budget.try_charge()
    assert not budget.try_charge()
    assert budget.exhausted
    with pytest.raises(BudgetExceeded) as info:
        budget.charge()
    assert info.value.limit == 2
    assert "probe" in str(info.value)


def test_unlimited_budget_never_exhausts():
    budget = Budget()
    for _ in range(1000):
        assert budget.try_charge()
    assert not budget.exhausted


def test_andersen_respects_budget():
    from repro.analysis.andersen import PointsTo

    module = build_listing5_module()
    with pytest.raises(BudgetExceeded):
        PointsTo(module, budget=Budget(max_items=0, label="fixpoint"))
    # a generous budget completes normally
    PointsTo(module, budget=Budget(max_items=10_000))


def test_crash_explorer_budget_partial_results():
    from repro.memory import AddressSpace, CacheModel, CrashExplorer, PersistentImage

    space = AddressSpace()
    image = PersistentImage(space)
    cache = CacheModel(space, image)
    base = space.alloc_pm(64 * 4, align=64)
    for i in range(4):
        space.write_int(base + 64 * i, 8, i + 1)
        cache.on_store(base + 64 * i, 8, seq=i + 1)

    explorer = CrashExplorer(cache, image, budget=Budget(max_items=5))
    states = list(explorer.states())
    assert len(states) == 5  # graceful truncation, not an exception
    assert explorer.budget_exhausted

    strict = CrashExplorer(cache, image, budget=Budget(max_items=5))
    with pytest.raises(BudgetExceeded):
        strict.find_violation(lambda state: True, strict_budget=True)


# ---------------------------------------------------------------------------
# double failure: the rollback itself breaks
# ---------------------------------------------------------------------------


def test_rollback_failure_raises_rollback_error_with_context():
    from repro.errors import RollbackError

    class Fragile:
        @property
        def x(self):
            return 1

        @x.setter
        def x(self, value):
            raise RuntimeError("undo exploded")

    class Probe:
        color = "red"

    module = build_two_bug_module()
    probe, fragile = Probe(), Fragile()
    txn = FixTransaction(module)
    txn.track_attr(probe, "color")  # undone second (restores)
    txn.track_attr(fragile, "x")  # undone first (raises)
    probe.color = "blue"
    with pytest.raises(RollbackError) as info:
        txn.rollback()
    # the failing undo did not stop the rest of the rollback
    assert probe.color == "red"
    assert "1 undo action(s) raised" in str(info.value)
    assert "undo exploded" in str(info.value)
    # the undo's own exception is chained as __context__
    assert isinstance(info.value.__context__, RuntimeError)


def test_rollback_failure_collects_every_failing_undo():
    from repro.errors import RollbackError

    module = build_two_bug_module()
    txn = FixTransaction(module)

    class Fragile:
        @property
        def x(self):
            return 1

        @x.setter
        def x(self, value):
            raise RuntimeError("boom")

    txn.track_attr(Fragile(), "x")
    txn.track_attr(Fragile(), "x")
    with pytest.raises(RollbackError) as info:
        txn.rollback()
    assert "2 undo action(s) raised" in str(info.value)
    # the transaction is done: a second rollback is a no-op
    txn.rollback()


def test_double_failure_chains_original_cause_through_apply(monkeypatch):
    """apply(): when a fix fails AND its rollback fails, the raised
    RollbackError carries the original failure as ``__cause__`` — the
    root cause is never masked, and nothing is quarantined."""
    from repro.errors import RollbackError

    module = build_listing5_module()
    _, trace, interp = pmemcheck_run(module, drive_main)
    fixer = Hippocrates(module, trace, interp.machine, keep_going=True)
    install_faults(fixer, FaultPlan("transformer", nth=1))

    def broken_rollback(self):
        raise RollbackError("rollback failed (simulated)")

    monkeypatch.setattr(FixTransaction, "rollback", broken_rollback)
    with pytest.raises(RollbackError) as info:
        fixer.fix()
    # keep_going=True must NOT swallow a double failure
    assert isinstance(info.value.__cause__, InjectedFault)
