"""Whole-pipeline integration tests: the paper's Fig. 2 flow end to end
on a real application, including crash-consistency before/after.
"""

from repro.apps import KVStore, build_kvstore
from repro.bench import redis_trace_workload
from repro.core import Hippocrates, do_no_harm
from repro.detect import check_trace, pmemcheck_run
from repro.ir import format_module, parse_module, verify_module
from repro.memory import CrashExplorer
from repro.trace import dump_trace, load_trace


def test_full_pipeline_on_kvstore():
    """noflush KV store -> trace -> text log -> Hippocrates -> clean."""
    module = build_kvstore("noflush")
    kv = KVStore(module)
    redis_trace_workload(kv)
    trace = kv.finish()
    detection = check_trace(trace)
    assert detection.bug_count > 0

    # Step 1 exactly as in the paper: go through the text log.
    log_text = dump_trace(trace)
    fixer = Hippocrates(module, log_text, kv.machine, heuristic="full")
    report = fixer.fix()
    verify_module(module)
    assert report.bugs_fixed == detection.bug_count
    assert report.interprocedural_count >= 1
    assert any(name.endswith("_PM") for name in module.functions)

    kv2 = KVStore(module)
    redis_trace_workload(kv2)
    assert check_trace(kv2.finish()).bug_count == 0


def test_do_no_harm_on_kvstore():
    def behavior_driver(interp):
        kv = KVStore(interp.module, interp)
        kv.init(32, 1 << 20)
        kv.put(b"alpha", b"A" * 20)
        kv.put(b"beta", b"B" * 20)
        kv.put(b"alpha", b"C" * 20)
        kv.delete(b"beta")
        value = kv.get(b"alpha")
        interp.output.extend(value)

    original = build_kvstore("noflush")
    fixed = build_kvstore("noflush")
    kv = KVStore(fixed)
    redis_trace_workload(kv)
    Hippocrates(fixed, kv.finish(), kv.machine).fix()
    before, after = do_no_harm(original, fixed, behavior_driver)
    assert bytes(after[:20]) == b"C" * 20


def test_crash_consistency_restored_by_fixes():
    """Before fixing: an adversarial crash loses a completed put.
    After fixing: every reachable crash state contains it."""

    def one_put(module):
        kv = KVStore(module)
        kv.init(32, 1 << 20)
        kv.put(b"crash-key-01", b"crash-val-01-xyz")
        return kv

    buggy = build_kvstore("noflush")
    kv = one_put(buggy)
    assert b"crash-val-01-xyz" not in kv.machine.image.snapshot_durable()

    fixed = build_kvstore("noflush")
    trace_kv = KVStore(fixed)
    redis_trace_workload(trace_kv)
    Hippocrates(fixed, trace_kv.finish(), trace_kv.machine).fix()
    kv = one_put(fixed)
    explorer = CrashExplorer(kv.machine.cache, kv.machine.image)
    assert explorer.all_consistent(
        lambda state: b"crash-val-01-xyz" in state.image, max_states=64
    )


def test_pipeline_through_serialized_module_and_trace():
    """Everything can round-trip through text: the module as textual IR
    and the trace as a pmemcheck log (build-server workflow)."""
    module = build_kvstore("noflush")
    kv = KVStore(module)
    redis_trace_workload(kv)
    trace_text = dump_trace(kv.finish())

    shipped = parse_module(format_module(module))
    report = Hippocrates(shipped, load_trace(trace_text), heuristic="full").fix()
    assert report.bugs_fixed > 0
    kv2 = KVStore(shipped)
    redis_trace_workload(kv2)
    assert check_trace(kv2.finish()).bug_count == 0


def test_intra_and_full_behave_identically():
    """RedisH-intra and RedisH-full differ only in cost, not behavior."""

    def build_fixed(heuristic):
        module = build_kvstore("noflush")
        kv = KVStore(module)
        redis_trace_workload(kv)
        Hippocrates(module, kv.finish(), kv.machine, heuristic=heuristic).fix()
        return module

    def run(module):
        kv = KVStore(module)
        kv.init(32, 1 << 20)
        for i in range(15):
            kv.put(f"key{i:03d}".encode(), f"value{i:03d}".encode() * 2)
        kv.delete(b"key004")
        return [kv.get(f"key{i:03d}".encode()) for i in range(15)], kv.count()

    assert run(build_fixed("full")) == run(build_fixed("off"))
