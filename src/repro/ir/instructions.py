"""Instruction set of the reproduction IR.

The instruction set mirrors the subset of LLVM that Hippocrates's
analyses care about: memory operations (``alloca``/``load``/``store``/
``gep``), integer arithmetic and comparisons, control flow
(``br``/``jmp``/``ret``), calls, and — centrally for this paper — the
persistence primitives ``flush`` (CLWB / CLFLUSHOPT / CLFLUSH) and
``fence`` (SFENCE / MFENCE).

Instructions are values (the value they compute).  The IR is *not* SSA
with phi nodes; like unoptimized clang output it uses ``alloca`` +
``load``/``store`` for mutable locals, which keeps the mapping between
"source lines" and instructions one-to-one — exactly the property the
paper relies on by disabling optimizations during trace generation.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, TYPE_CHECKING

from ..errors import IRError
from .debuginfo import SYNTHETIC, DebugLoc
from .types import I1, I64, PTR, VOID, IntType, Type
from .values import Constant, Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .basicblock import BasicBlock
    from .function import Function

_iid_counter = itertools.count(1)


def _fresh_iid() -> int:
    return next(_iid_counter)


#: Flush instruction flavors (x86 names; ARM's DC CVAP behaves like CLWB).
FLUSH_KINDS = ("clwb", "clflushopt", "clflush")
#: Fence instruction flavors.
FENCE_KINDS = ("sfence", "mfence")
#: Supported binary integer operations.
BINARY_OPS = ("add", "sub", "mul", "udiv", "urem", "and", "or", "xor", "shl", "lshr")
#: Supported integer comparison predicates (all unsigned or equality).
ICMP_PREDS = ("eq", "ne", "ult", "ule", "ugt", "uge")


class Instruction(Value):
    """Base class of all instructions.

    :ivar iid: a globally unique instruction id, stable across the life
        of the instruction; trace events reference instructions by iid.
    :ivar loc: source-level debug location.
    :ivar parent: the owning :class:`BasicBlock` (set on insertion).
    """

    opcode: str = "?"
    #: True for instructions that end a basic block.
    is_terminator: bool = False

    def __init__(self, type_: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type_, name)
        self.operands: List[Value] = list(operands)
        self.iid = _fresh_iid()
        self.loc: DebugLoc = SYNTHETIC
        self.parent: Optional["BasicBlock"] = None

    @property
    def function(self) -> Optional["Function"]:
        """The function containing this instruction, if inserted."""
        return self.parent.parent if self.parent is not None else None

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` among the operands.

        Returns the number of replacements made.
        """
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def operand_repr(self) -> str:
        return ", ".join(op.short() for op in self.operands)

    def __repr__(self) -> str:
        prefix = f"{self.short()} = " if not self.type.is_void else ""
        return f"<{prefix}{self.opcode} {self.operand_repr()} #{self.iid}>"


# ---------------------------------------------------------------------------
# Memory instructions
# ---------------------------------------------------------------------------


class Alloca(Instruction):
    """Allocate ``size`` bytes of (volatile) stack storage; yields ptr."""

    opcode = "alloca"

    def __init__(self, size: int, name: str = ""):
        if size <= 0:
            raise IRError("alloca size must be positive")
        super().__init__(PTR, [], name)
        self.size = size

    def operand_repr(self) -> str:
        return str(self.size)


class Load(Instruction):
    """Load an integer of the given type from a pointer."""

    opcode = "load"

    def __init__(self, ptr: Value, type_: Type, name: str = ""):
        if not ptr.type.is_pointer:
            raise IRError("load requires a pointer operand")
        if type_.is_void:
            raise IRError("cannot load void")
        super().__init__(type_, [ptr], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def size(self) -> int:
        return self.type.size


class Store(Instruction):
    """Store a value through a pointer.

    Stores are the protagonists of this paper: a store whose target is
    persistent memory creates a durability obligation that must be met
    by a following flush and fence.

    ``nontemporal`` models x86 MOVNT stores (§2.1's second durability
    mechanism): the data bypasses the cache straight into the
    write-combining buffer, so it needs *no flush* — but it is weakly
    ordered and still needs a fence before it is durable.
    """

    opcode = "store"

    def __init__(self, value: Value, ptr: Value, nontemporal: bool = False):
        if not ptr.type.is_pointer:
            raise IRError("store requires a pointer target")
        if value.type.is_void:
            raise IRError("cannot store void")
        super().__init__(VOID, [value, ptr])
        self.nontemporal = nontemporal

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    @property
    def size(self) -> int:
        return self.value.type.size


class Gep(Instruction):
    """Pointer arithmetic: ``result = base + offset`` (byte offset)."""

    opcode = "gep"

    def __init__(self, base: Value, offset: Value, name: str = ""):
        if not base.type.is_pointer:
            raise IRError("gep base must be a pointer")
        if not offset.type.is_integer:
            raise IRError("gep offset must be an integer")
        super().__init__(PTR, [base, offset], name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def offset(self) -> Value:
        return self.operands[1]


# ---------------------------------------------------------------------------
# Arithmetic / logic
# ---------------------------------------------------------------------------


class BinOp(Instruction):
    """A binary integer operation (see :data:`BINARY_OPS`)."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise IRError(f"unknown binary op: {op!r}")
        if not (lhs.type.is_integer and rhs.type.is_integer):
            raise IRError(f"{op} requires integer operands")
        if lhs.type != rhs.type:
            raise IRError(f"{op} operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.op = op

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return self.op


class ICmp(Instruction):
    """Integer comparison producing an ``i1``."""

    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = ""):
        if pred not in ICMP_PREDS:
            raise IRError(f"unknown icmp predicate: {pred!r}")
        if lhs.type != rhs.type:
            raise IRError("icmp operand types differ")
        super().__init__(I1, [lhs, rhs], name)
        self.pred = pred

    def operand_repr(self) -> str:
        return f"{self.pred} {self.operands[0].short()}, {self.operands[1].short()}"


class Select(Instruction):
    """``result = cond ? a : b``."""

    opcode = "select"

    def __init__(self, cond: Value, a: Value, b: Value, name: str = ""):
        if a.type != b.type:
            raise IRError("select arm types differ")
        super().__init__(a.type, [cond, a, b], name)


class Cast(Instruction):
    """Convert between integer widths or between int and pointer.

    ``kind`` is one of ``zext``, ``trunc``, ``ptrtoint``, ``inttoptr``.
    """

    CAST_KINDS = ("zext", "trunc", "ptrtoint", "inttoptr")
    opcode = "cast"

    def __init__(self, kind: str, value: Value, to_type: Type, name: str = ""):
        if kind not in self.CAST_KINDS:
            raise IRError(f"unknown cast kind: {kind!r}")
        if kind == "inttoptr" and not to_type.is_pointer:
            raise IRError("inttoptr must produce a pointer")
        if kind == "ptrtoint" and not value.type.is_pointer:
            raise IRError("ptrtoint requires a pointer operand")
        super().__init__(to_type, [value], name)
        self.kind = kind

    def operand_repr(self) -> str:
        return f"{self.kind} {self.operands[0].short()} to {self.type}"


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


class Branch(Instruction):
    """Conditional branch on an ``i1``."""

    opcode = "br"
    is_terminator = True

    def __init__(self, cond: Value, then_block: "BasicBlock", else_block: "BasicBlock"):
        super().__init__(VOID, [cond])
        self.then_block = then_block
        self.else_block = else_block

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def successors(self) -> List["BasicBlock"]:
        return [self.then_block, self.else_block]

    def operand_repr(self) -> str:
        return (
            f"{self.cond.short()}, %{self.then_block.name}, %{self.else_block.name}"
        )


class Jump(Instruction):
    """Unconditional branch."""

    opcode = "jmp"
    is_terminator = True

    def __init__(self, target: "BasicBlock"):
        super().__init__(VOID, [])
        self.target = target

    def successors(self) -> List["BasicBlock"]:
        return [self.target]

    def operand_repr(self) -> str:
        return f"%{self.target.name}"


class Ret(Instruction):
    """Return from the current function (optionally with a value)."""

    opcode = "ret"
    is_terminator = True

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [] if value is None else [value])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def successors(self) -> List["BasicBlock"]:
        return []


class Trap(Instruction):
    """Abort execution (models assert failure / abort())."""

    opcode = "trap"
    is_terminator = True

    def __init__(self):
        super().__init__(VOID, [])

    def successors(self) -> List["BasicBlock"]:
        return []


class Call(Instruction):
    """Call a function by name.

    The callee is referenced *by name* so that modules can be rewritten
    (function cloning in the persistent-subprogram transformation simply
    retargets ``callee`` to the ``_PM`` clone).  Names not defined in the
    module resolve to interpreter intrinsics (``pm_alloc``, ``memcpy_i``,
    ``checkpoint``, ...).
    """

    opcode = "call"

    def __init__(self, callee: str, args: Sequence[Value], type_: Type, name: str = ""):
        super().__init__(type_, list(args), name)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return self.operands

    def pointer_args(self) -> List[Value]:
        """The pointer-typed arguments (used by the hoisting heuristic)."""
        return [a for a in self.operands if a.type.is_pointer]

    def operand_repr(self) -> str:
        args = ", ".join(op.short() for op in self.operands)
        return f"@{self.callee}({args})"


# ---------------------------------------------------------------------------
# Persistence primitives
# ---------------------------------------------------------------------------


class Flush(Instruction):
    """Flush the cache line containing the pointed-to address.

    ``clwb`` and ``clflushopt`` are *weakly ordered*: the write-back is
    not guaranteed to complete until a subsequent fence.  ``clflush`` is
    self-ordering (serializing with respect to the flushed line).
    """

    opcode = "flush"

    def __init__(self, ptr: Value, kind: str = "clwb"):
        if kind not in FLUSH_KINDS:
            raise IRError(f"unknown flush kind: {kind!r}")
        if not ptr.type.is_pointer:
            raise IRError("flush requires a pointer operand")
        super().__init__(VOID, [ptr])
        self.kind = kind

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    def operand_repr(self) -> str:
        return f"{self.kind}, {self.pointer.short()}"


class Fence(Instruction):
    """A store fence (SFENCE) or full fence (MFENCE).

    Fences drain pending weakly-ordered flushes, establishing the
    durability ordering X -> F(X) -> M -> I from the paper's §4.2.
    """

    opcode = "fence"

    def __init__(self, kind: str = "sfence"):
        if kind not in FENCE_KINDS:
            raise IRError(f"unknown fence kind: {kind!r}")
        super().__init__(VOID, [])
        self.kind = kind

    def operand_repr(self) -> str:
        return self.kind


def const(value: int, type_: Type = I64) -> Constant:
    """Shorthand constructor for integer constants."""
    if isinstance(type_, IntType) or type_.is_pointer:
        return Constant(value, type_)
    raise IRError(f"cannot make a constant of type {type_}")
