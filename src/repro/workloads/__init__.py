"""Workload generation: YCSB core workloads and their distributions."""

from .ycsb import (
    CORE_WORKLOADS,
    FIG4_ORDER,
    INSERT,
    Operation,
    READ,
    RMW,
    RunResult,
    SCAN,
    UPDATE,
    WorkloadSpec,
    execute,
    generate_load,
    generate_run,
    make_key,
    make_value,
)
from .zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a64,
)

__all__ = [
    "CORE_WORKLOADS",
    "execute",
    "FIG4_ORDER",
    "fnv1a64",
    "generate_load",
    "generate_run",
    "INSERT",
    "LatestGenerator",
    "make_key",
    "make_value",
    "Operation",
    "READ",
    "RMW",
    "RunResult",
    "SCAN",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "UPDATE",
    "WorkloadSpec",
    "ZipfianGenerator",
]
