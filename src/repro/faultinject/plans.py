"""Deterministic, seeded fault plans.

A :class:`FaultPlan` names one component of the pipeline and one way it
fails.  Plans are pure data — the :mod:`~repro.faultinject.injector`
interprets them — so a campaign's fault matrix is reproducible from the
plan list alone, and a failing combination can be replayed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError

#: components a plan may target.  The first five are in-process seams
#: of one repair pipeline; the last three are process-level seams of
#: the batch supervisor (PR 2).
TARGETS = (
    "parser",
    "locator",
    "classifier",
    "transformer",
    "budget",
    "worker",
    "supervisor",
    "journal",
)

#: failure shapes.  Process-level modes: ``hang-worker`` wedges a
#: worker forever (a stuck Andersen fixpoint — the watchdog must kill
#: it); ``kill-worker-at-nth`` makes the worker on the Nth batch task
#: die silently (no exit status ceremony, no result); ``kill-
#: supervisor-at-nth`` SIGKILLs the supervisor itself right after its
#: Nth journal checkpoint; ``torn-journal-write`` tears the journal's
#: tail record mid-CRC, as a crash during ``write(2)`` would.
MODES = (
    "raise-at-nth",
    "corrupt-trace-line",
    "budget-exhaustion",
    "hang-worker",
    "kill-worker-at-nth",
    "kill-supervisor-at-nth",
    "torn-journal-write",
)

#: which modes make sense for which targets (None = the legacy
#: in-process targets, which all use the first three modes)
_PROCESS_MODES = {
    "worker": ("hang-worker", "kill-worker-at-nth"),
    "supervisor": ("kill-supervisor-at-nth",),
    "journal": ("torn-journal-write",),
}


class InjectedFault(ReproError):
    """The exception raised by raise-at-Nth-call fault plans.

    A :class:`ReproError` subclass so it flows through the same
    quarantine/degrade paths a real subsystem failure would take.
    """


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault to inject into one pipeline component.

    :param target: which component fails (see :data:`TARGETS`).
    :param mode: how it fails (see :data:`MODES`).
    :param nth: for ``raise-at-nth``: the 1-based call index that
        raises; calls before it behave normally.
    :param seed: for ``corrupt-trace-line``: the RNG seed choosing
        which lines are corrupted and how.
    :param corrupt_lines: for ``corrupt-trace-line``: how many event
        lines to damage.
    :param budget_items: for ``budget-exhaustion``: the analysis work
        budget (0 exhausts immediately).
    :param attempts: for worker faults: how many attempts of the
        targeted task the fault affects (1 = first attempt only, so the
        retry succeeds; 0 = every attempt, so the task is quarantined).
    """

    target: str
    mode: str = "raise-at-nth"
    nth: int = 1
    seed: int = 0
    corrupt_lines: int = 1
    budget_items: int = 0
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise ValueError(f"unknown fault target {self.target!r}; use {TARGETS}")
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; use {MODES}")
        process_modes = _PROCESS_MODES.get(self.target)
        if process_modes is not None and self.mode not in process_modes:
            raise ValueError(
                f"target {self.target!r} supports modes {process_modes}, "
                f"not {self.mode!r}"
            )
        if process_modes is None and self.mode not in (
            "raise-at-nth", "corrupt-trace-line", "budget-exhaustion"
        ):
            raise ValueError(
                f"mode {self.mode!r} needs a process-level target "
                f"{tuple(_PROCESS_MODES)}, not {self.target!r}"
            )

    @property
    def name(self) -> str:
        if self.mode == "raise-at-nth":
            return f"{self.target}:raise@{self.nth}"
        if self.mode == "corrupt-trace-line":
            return f"parser:corrupt x{self.corrupt_lines} seed={self.seed}"
        if self.mode == "hang-worker":
            scope = "always" if self.attempts == 0 else f"x{self.attempts}"
            return f"worker:hang@task{self.nth} {scope}"
        if self.mode == "kill-worker-at-nth":
            scope = "always" if self.attempts == 0 else f"x{self.attempts}"
            return f"worker:kill@task{self.nth} {scope}"
        if self.mode == "kill-supervisor-at-nth":
            return f"supervisor:kill@checkpoint{self.nth}"
        if self.mode == "torn-journal-write":
            return f"journal:torn-tail seed={self.seed}"
        return f"budget:items={self.budget_items}"

    def exception(self) -> InjectedFault:
        """The exception a raise-at-Nth plan injects."""
        return InjectedFault(
            f"injected fault: {self.target} failure at call {self.nth}"
        )
