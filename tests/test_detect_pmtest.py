"""Unit tests for the PMTest-style assertion checker."""

from repro.detect import check_trace, check_trace_pmtest
from repro.detect.pmtest import assertion_labels, check_assertions
from repro.interp import Interpreter
from repro.ir import I64, ModuleBuilder, PTR


def run(build):
    mb = ModuleBuilder("t")
    build(mb)
    interp = Interpreter(mb.module)
    interp.call("main")
    return interp.finish()


def test_satisfied_assertion():
    def build(mb):
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(1, p)
        b.flush(p)
        b.fence()
        b.call("pmtest_assert_persisted", [p, 8])
        b.ret(0)

    trace = run(build)
    assert check_assertions(trace).bug_count == 0


def test_violated_assertion():
    def build(mb):
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(1, p)
        b.call("pmtest_assert_persisted", [p, 8])
        b.ret(0)

    trace = run(build)
    result = check_assertions(trace)
    assert result.bug_count == 1


def test_assertion_scoped_to_range():
    def build(mb):
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [256], PTR)
        b.store(1, p)  # unflushed, but outside the asserted range
        other = b.gep(p, 128)
        b.store(2, other)
        b.flush(other)
        b.fence()
        b.call("pmtest_assert_persisted", [other, 8])
        b.ret(0)

    trace = run(build)
    # PMTest only checks its assertion: the unrelated dirty store at p
    # is not flagged (no annotation covers it)...
    assert check_assertions(trace).bug_count == 0
    # ...whereas pmemcheck catches it at exit.
    assert check_trace(trace).bug_count == 1


def test_pmtest_ignores_exit_boundary():
    def build(mb):
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(1, p)
        b.ret(0)

    trace = run(build)
    assert check_trace_pmtest(trace).bug_count == 0


def test_assertion_labels():
    def build(mb):
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.call("pmtest_assert_persisted", [p, 16])
        b.call("pmtest_assert_persisted", [p, 32])
        b.ret(0)

    labels = assertion_labels(run(build))
    assert len(labels) == 2 and all(l.startswith("pmtest:") for l in labels)
