"""Type system for the reproduction IR.

The IR is deliberately small: integer types of a few fixed widths, an
opaque pointer type (pointers are untyped byte addresses, as in modern
LLVM), and ``void`` for functions with no return value.  Types are
interned singletons, so identity comparison (``is``) works, but ``==``
is also defined for clarity.
"""

from __future__ import annotations

from typing import Dict


class Type:
    """Base class for IR types."""

    #: Size of a value of this type in bytes (0 for void).
    size: int = 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Type) and repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash(repr(self))

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)


class IntType(Type):
    """An integer type of a fixed bit width (i8, i16, i32, i64)."""

    _instances: Dict[int, "IntType"] = {}

    def __new__(cls, bits: int) -> "IntType":
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        if bits not in cls._instances:
            instance = super().__new__(cls)
            instance.bits = bits
            cls._instances[bits] = instance
        return cls._instances[bits]

    def __init__(self, bits: int):
        self.bits = bits

    @property
    def size(self) -> int:  # type: ignore[override]
        return max(1, self.bits // 8)

    @property
    def mask(self) -> int:
        """Bit mask for truncating a Python int to this width."""
        return (1 << self.bits) - 1

    def __repr__(self) -> str:
        return f"i{self.bits}"


class PointerType(Type):
    """An opaque pointer (a 64-bit byte address)."""

    _instance: "PointerType" = None  # type: ignore[assignment]

    def __new__(cls) -> "PointerType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    @property
    def size(self) -> int:  # type: ignore[override]
        return 8

    @property
    def mask(self) -> int:
        return (1 << 64) - 1

    def __repr__(self) -> str:
        return "ptr"


class VoidType(Type):
    """The type of instructions that produce no value."""

    _instance: "VoidType" = None  # type: ignore[assignment]

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "void"


#: Canonical singletons, used throughout the package.
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
PTR = PointerType()
VOID = VoidType()

_BY_NAME = {repr(t): t for t in (I1, I8, I16, I32, I64, PTR, VOID)}


def type_from_name(name: str) -> Type:
    """Look a type up by its textual spelling (``i64``, ``ptr``, ...)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown type name: {name!r}") from None
