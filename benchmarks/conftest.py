"""Shared benchmark utilities.

Heavy experiment computations run once per session (fixtures below);
``benchmark`` then measures a representative kernel of each experiment
so ``pytest benchmarks/ --benchmark-only`` produces a timing table.
Every regenerated paper table is printed and also written under
``benchmarks/results/`` for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name: str, text: str) -> None:
    """Persist a regenerated table and echo it to stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def effectiveness_outcomes():
    from repro.bench import run_effectiveness

    return run_effectiveness()


@pytest.fixture(scope="session")
def fig3_outcomes():
    from repro.bench import run_fig3

    return run_fig3()


@pytest.fixture(scope="session")
def fig4_result():
    from repro.bench import run_fig4

    return run_fig4(record_count=250, operation_count=250, value_size=96)
