"""Stable integer opcodes for the register-compiled execution engine.

The flat engine (:mod:`repro.interp.engine`) dispatches on small
integers instead of ``isinstance`` chains.  The numbering here is part
of the compiled-program format: it is deliberately explicit (no
``enum.auto()``, no ``itertools.count``) so a renumbering shows up as a
diff, and the flat engine's handler table and inlined hot-path
comparisons can rely on the values never moving.

Layout:

- ``OP_FELL_OFF`` is 0: a pseudo-instruction the compiler appends after
  every basic block.  Executing it reproduces the reference
  interpreter's "fell off block" error for blocks without a terminator;
  for terminated blocks it is simply unreachable.
- 1..16 are the hot opcodes, inlined in the engine's dispatch chain
  (memory, the two dominant arithmetic ops, all comparisons, control
  flow, calls, and the persistence primitives).
- 17..27 are cold opcodes, dispatched through the opcode-indexed
  handler table.

Comparisons get one opcode per predicate and binary operations one
opcode per operator: the predicate/operator dispatch happens once, at
compile time, instead of on every executed instruction.
"""

from __future__ import annotations

OP_FELL_OFF = 0

# -- hot opcodes (inlined in the engine's dispatch chain) -------------------
OP_LOAD = 1
OP_STORE = 2
OP_GEP = 3
OP_ADD = 4
OP_SUB = 5
OP_ICMP_EQ = 6
OP_ICMP_NE = 7
OP_ICMP_ULT = 8
OP_ICMP_ULE = 9
OP_ICMP_UGT = 10
OP_ICMP_UGE = 11
OP_BR = 12
OP_JMP = 13
OP_CALL = 14
OP_RET = 15
OP_FLUSH = 16
OP_FENCE = 17
OP_ALLOCA = 18

# -- cold opcodes (opcode-indexed handler table) ----------------------------
OP_MUL = 19
OP_UDIV = 20
OP_UREM = 21
OP_AND = 22
OP_OR = 23
OP_XOR = 24
OP_SHL = 25
OP_LSHR = 26
OP_SELECT = 27
OP_CAST = 28
OP_TRAP = 29

#: One past the largest opcode (handler-table size).
NUM_OPCODES = 30

#: BinOp operator name -> opcode.
BINOP_OPCODES = {
    "add": OP_ADD,
    "sub": OP_SUB,
    "mul": OP_MUL,
    "udiv": OP_UDIV,
    "urem": OP_UREM,
    "and": OP_AND,
    "or": OP_OR,
    "xor": OP_XOR,
    "shl": OP_SHL,
    "lshr": OP_LSHR,
}

#: ICmp predicate name -> opcode.
ICMP_OPCODES = {
    "eq": OP_ICMP_EQ,
    "ne": OP_ICMP_NE,
    "ult": OP_ICMP_ULT,
    "ule": OP_ICMP_ULE,
    "ugt": OP_ICMP_UGT,
    "uge": OP_ICMP_UGE,
}

#: Opcode -> human-readable mnemonic (diagnostics, profiling output).
OPCODE_NAMES = {
    OP_FELL_OFF: "fell_off",
    OP_LOAD: "load",
    OP_STORE: "store",
    OP_GEP: "gep",
    OP_ADD: "add",
    OP_SUB: "sub",
    OP_ICMP_EQ: "icmp.eq",
    OP_ICMP_NE: "icmp.ne",
    OP_ICMP_ULT: "icmp.ult",
    OP_ICMP_ULE: "icmp.ule",
    OP_ICMP_UGT: "icmp.ugt",
    OP_ICMP_UGE: "icmp.uge",
    OP_BR: "br",
    OP_JMP: "jmp",
    OP_CALL: "call",
    OP_RET: "ret",
    OP_FLUSH: "flush",
    OP_FENCE: "fence",
    OP_ALLOCA: "alloca",
    OP_MUL: "mul",
    OP_UDIV: "udiv",
    OP_UREM: "urem",
    OP_AND: "and",
    OP_OR: "or",
    OP_XOR: "xor",
    OP_SHL: "shl",
    OP_LSHR: "lshr",
    OP_SELECT: "select",
    OP_CAST: "cast",
    OP_TRAP: "trap",
}
