"""Fault installers: wrap pipeline components per a :class:`FaultPlan`.

Injection is *surgical*: each installer wraps one seam of a live
:class:`~repro.core.hippocrates.Hippocrates` instance —

- ``locator`` — the per-bug store/flush resolution (Step 2),
- ``classifier`` — the whole-program analysis build (Step 3),
- ``transformer`` — persistent-subprogram cloning during apply (Step 4),
- ``budget`` — the Andersen fixpoint's work budget,

while :func:`corrupt_trace_text` damages a pmemcheck text log *before*
ingestion (Step 1).  All faults are deterministic: raise-at-Nth plans
count calls, corruption is seeded.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..budget import Budget
from ..core.hippocrates import Hippocrates
from ..core.locate import Locator
from ..trace.pmemcheck import parse_event
from .plans import FaultPlan


class _CallCounter:
    """Counts calls; True exactly at the plan's Nth call."""

    def __init__(self, nth: int):
        self.nth = nth
        self.calls = 0

    def fires(self) -> bool:
        self.calls += 1
        return self.calls == self.nth


class FaultyLocator:
    """A locator proxy that fails the Nth store/flush resolution.

    Only the per-bug resolution entry points (`locate_store`,
    `locate_flush`) count toward the plan — call-site lookups made by
    the hoisting heuristic are delegated untouched, so the fault lands
    in the *locate* phase of exactly one bug.
    """

    def __init__(self, inner: Locator, plan: FaultPlan):
        self._inner = inner
        self._plan = plan
        self._counter = _CallCounter(plan.nth)

    def _maybe_fail(self) -> None:
        if self._counter.fires():
            raise self._plan.exception()

    def locate_store(self, event):
        self._maybe_fail()
        return self._inner.locate_store(event)

    def locate_flush(self, event):
        self._maybe_fail()
        return self._inner.locate_flush(event)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _install_locator_fault(fixer: Hippocrates, plan: FaultPlan) -> None:
    fixer.locator = FaultyLocator(fixer.locator, plan)  # type: ignore[assignment]


def _install_classifier_fault(fixer: Hippocrates, plan: FaultPlan) -> None:
    original = fixer._classify
    counter = _CallCounter(plan.nth)

    def faulty_classify(mode: str):
        if counter.fires():
            raise plan.exception()
        return original(mode)

    fixer._classify = faulty_classify  # type: ignore[method-assign]


def _install_transformer_fault(fixer: Hippocrates, plan: FaultPlan) -> None:
    original_factory = fixer._make_transformer
    counter = _CallCounter(plan.nth)

    def faulty_factory():
        transformer = original_factory()
        original_clone = transformer.persistent_clone

        def faulty_clone(fn_name: str):
            # Raising on the Nth clone leaves earlier clones of the
            # same fix already inserted — the exact half-mutated state
            # the transaction journal must roll back.
            if counter.fires():
                raise plan.exception()
            return original_clone(fn_name)

        # Instance attribute shadows the bound method, so the
        # transformer's own recursive persistent_clone calls are
        # intercepted too.
        transformer.persistent_clone = faulty_clone  # type: ignore[method-assign]
        return transformer

    fixer._make_transformer = faulty_factory  # type: ignore[method-assign]


def _install_budget_fault(fixer: Hippocrates, plan: FaultPlan) -> None:
    fixer.analysis_budget = Budget(
        max_items=plan.budget_items, label="andersen fixpoint"
    )


def install_faults(fixer: Hippocrates, plan: FaultPlan) -> None:
    """Wire one fault plan into a live pipeline instance.

    ``parser`` plans cannot be installed here — the trace is parsed in
    the constructor; corrupt the text with :func:`corrupt_trace_text`
    first and build the fixer from the damaged log.
    """
    if plan.target == "locator":
        _install_locator_fault(fixer, plan)
    elif plan.target == "classifier":
        _install_classifier_fault(fixer, plan)
    elif plan.target == "transformer":
        _install_transformer_fault(fixer, plan)
    elif plan.target == "budget":
        _install_budget_fault(fixer, plan)
    else:
        raise ValueError(
            f"plan {plan.name!r} targets the parser; use corrupt_trace_text"
        )


# ---------------------------------------------------------------------------
# trace corruption (the crash-truncated-log case)
# ---------------------------------------------------------------------------

#: record tags eligible for corruption.  BOUNDARY lines are excluded:
#: losing a durability boundary changes which *epoch* every bug belongs
#: to, which is a semantic change, not a parse fault.
_CORRUPTIBLE = ("STORE;", "FLUSH;", "FENCE;")


def _damage(line: str, rng: random.Random) -> str:
    """One deterministic way to ruin a record (chosen by the RNG)."""
    style = rng.randrange(4)
    if style == 0:  # crash truncation: the write stopped mid-record
        return line[: rng.randrange(3, max(4, len(line) // 2))]
    if style == 1:  # field garbage: a hex address turned to noise
        parts = line.split(";")
        parts[rng.randrange(1, len(parts))] = "\x00garbage\x7f"
        return ";".join(parts)
    if style == 2:  # reordered fields (tag no longer first)
        parts = line.split(";")
        return ";".join(parts[1:] + parts[:1])
    return "%" + line  # leading junk: unknown record tag


def corrupt_trace_text(
    text: str, seed: int = 0, lines: int = 1
) -> Tuple[str, List[int]]:
    """Deterministically corrupt ``lines`` event records of a text log.

    Returns ``(corrupted_text, damaged_line_numbers)`` (1-based).  Every
    damaged line is guaranteed unparseable — the RNG retries styles
    until :func:`parse_event` rejects the result — so strict ingestion
    must fail and lenient ingestion must produce exactly one
    :class:`TraceWarning` per damaged line.
    """
    rng = random.Random(seed)
    rows = text.splitlines()
    candidates = [
        i for i, row in enumerate(rows) if row.startswith(_CORRUPTIBLE)
    ]
    if not candidates:
        return text, []
    chosen = sorted(rng.sample(candidates, min(lines, len(candidates))))
    damaged: List[int] = []
    for index in chosen:
        original = rows[index]
        for _ in range(16):
            mangled = _damage(original, rng)
            try:
                parse_event(mangled)
            except Exception:
                break  # good: the damage is visible to the parser
        else:  # pragma: no cover - damage styles always break a record
            mangled = "%corrupt%"
        rows[index] = mangled
        damaged.append(index + 1)
    return "\n".join(rows) + ("\n" if text.endswith("\n") else ""), damaged
