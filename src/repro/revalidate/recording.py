"""Recording a detection run for later incremental revalidation.

The interpreter notifies a :class:`RunRecorder` at every *top-level*
driver call (``interp.call(...)`` with an empty frame stack).  Each call
becomes a :class:`CallRecord` — a segment of the run — carrying:

- the call spec (function name + arguments) and its recorded
  :class:`~repro.interp.interpreter.ExecutionResult`, so replay can
  skip the call and hand the driver the original result;
- the trace offset and recorder sequence value at call entry, so a
  replayed suffix splices seamlessly onto the baseline trace prefix;
- the set of instruction iids executed during the call — the
  *dependency index* entry that decides whether a committed fix (whose
  anchor iid is known from the ``FixTransaction`` witness) can affect
  the segment;
- optionally a :class:`~repro.revalidate.snapshot.MachineSnapshot`
  taken at call entry.

Snapshot thinning bounds memory: when more than ``max_snapshots``
segments hold one, the stride doubles and off-stride snapshots are
dropped (segment 0 always keeps its snapshot, so a full-prefix replay
is always possible).  Per-segment metadata is never dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..detect.durability import ChainIndex, CheckerState
from ..detect.reports import DetectionResult
from ..interp.interpreter import ExecutionResult, Interpreter
from ..trace.events import CallStack, StoreEvent
from ..trace.trace import PMTrace, TraceRecorder
from .snapshot import MachineSnapshot


@dataclass(frozen=True)
class VolAnchorOp:
    """A volatile-target store or flush execution, by trace position.

    Volatile operations record no trace event, but a fence *inserted
    after* such an instruction would still execute and record — so the
    recording run notes them: ``pos`` is ``len(trace.events)`` at the
    moment of the operation (the op happened between baseline events
    ``pos - 1`` and ``pos``), ``iid`` the executing instruction.  The
    trace synthesizer uses these to place fences for volatile anchor
    executions (see :mod:`repro.revalidate.synthesize`).
    """

    pos: int
    iid: int
    kind: str  # "store" | "flush"


class RecordingTraceRecorder(TraceRecorder):
    """A trace recorder that also keeps the volatile-op side channel.

    The side channel never consumes sequence numbers and never touches
    the trace, so the recorded trace is byte-identical to a plain
    :class:`~repro.trace.trace.TraceRecorder`'s.  ``current_iid`` is
    attached by the engine after the interpreter exists (reading the
    executing instruction is much cheaper than capturing a stack).
    """

    record_vol_ops = True

    def __init__(self, stack_provider: Callable[[], CallStack]):
        super().__init__(stack_provider)
        self.vol_ops: List[VolAnchorOp] = []
        self.current_iid: Optional[Callable[[], int]] = None

    def record_store(
        self, addr: int, size: int, space: str, nontemporal: bool = False
    ) -> Optional[StoreEvent]:
        event = super().record_store(addr, size, space, nontemporal)
        if event is None and self.current_iid is not None:
            self.vol_ops.append(
                VolAnchorOp(len(self.trace.events), self.current_iid(), "store")
            )
        return event

    def note_vol_flush(self) -> None:
        if self.current_iid is not None:
            self.vol_ops.append(
                VolAnchorOp(len(self.trace.events), self.current_iid(), "flush")
            )


@dataclass(frozen=True)
class CalleeSpan:
    """One module-function call's footprint in the recorded run.

    Recorded at every intra-module call (not the top-level driver
    calls): the trace-event and volatile-op windows the callee's
    execution occupies, the call site's iid, and the frame depth at the
    call.  Structural synthesis uses spans to find the dynamic
    executions of a retargeted call site and rewrite exactly the events
    inside them (see :mod:`repro.revalidate.synthesize`).

    ``entry``/``exit`` are ``len(trace.events)`` at call and return;
    ``vol_entry``/``vol_exit`` are ``len(recorder.vol_ops)`` at the same
    instants, pinning the interleaving of the volatile side channel
    against the span boundaries.  ``depth`` is the caller's frame count
    *before* the callee frame is pushed — stack frames with index >=
    ``depth`` in an event recorded inside the span belong to the callee
    (or deeper), which is what lets the rewriter re-map exactly the
    cloned suffix of each call stack.
    """

    call_iid: int
    entry: int
    exit: int
    vol_entry: int
    vol_exit: int
    depth: int


@dataclass
class CallRecord:
    """One top-level driver call of the recording run."""

    index: int
    fn_name: str
    args: List[int]
    #: ``len(trace.events)`` at call entry
    trace_start: int
    #: the trace recorder's sequence counter at call entry
    seq_start: int
    #: interpreter steps consumed before this call
    steps_start: int
    #: iids of every instruction executed during this call
    iids: Set[int] = field(default_factory=set)
    snapshot: Optional[MachineSnapshot] = None
    result: Optional[ExecutionResult] = None


class RunRecorder:
    """Collects segments (and thinned snapshots) during a recorded run.

    Attach via ``Interpreter(..., run_recorder=recorder)``; the
    interpreter calls :meth:`begin_call`/:meth:`end_call` around each
    top-level call.
    """

    def __init__(self, max_snapshots: int = 32):
        if max_snapshots < 1:
            raise ValueError("max_snapshots must be >= 1")
        self.max_snapshots = max_snapshots
        self.segments: List[CallRecord] = []
        self._stride = 1
        self._snapshot_count = 0
        #: completed callee spans, in execution (return) order
        self.spans: List[CalleeSpan] = []
        self._open: List[Tuple[int, int, int, int]] = []
        #: False once an exception unwound past an open callee — the
        #: span record is then incomplete and structural synthesis must
        #: not trust it
        self.spans_ok = True

    # -- callee spans (structural-synthesis witness) ---------------------------

    def enter_callee(
        self, call_iid: int, trace_pos: int, vol_pos: int, depth: int
    ) -> None:
        """The interpreter is about to push a module-callee frame."""
        self._open.append((call_iid, trace_pos, vol_pos, depth))

    def exit_callee(self, trace_pos: int, vol_pos: int) -> None:
        """The innermost open callee just returned."""
        call_iid, entry, vol_entry, depth = self._open.pop()
        self.spans.append(
            CalleeSpan(
                call_iid=call_iid,
                entry=entry,
                exit=trace_pos,
                vol_entry=vol_entry,
                vol_exit=vol_pos,
                depth=depth,
            )
        )

    def _check_balanced(self) -> None:
        # An exception that unwound out of a top-level call leaves open
        # callee entries behind; the span record is unusable from here.
        if self._open:
            self.spans_ok = False
            self._open.clear()

    def begin_call(self, interp: Interpreter, fn_name: str, args: List[int]) -> None:
        self._check_balanced()
        segment = CallRecord(
            index=len(self.segments),
            fn_name=fn_name,
            args=list(args or []),
            trace_start=len(interp.trace.events),
            seq_start=interp.machine.recorder._seq,
            steps_start=interp.steps,
        )
        if segment.index % self._stride == 0:
            segment.snapshot = MachineSnapshot.capture(interp)
            self._snapshot_count += 1
        self.segments.append(segment)
        if self._snapshot_count > self.max_snapshots:
            self._thin()
        interp._seg_iids = segment.iids

    def end_call(self, interp: Interpreter, result: ExecutionResult) -> None:
        self._check_balanced()
        self.segments[-1].result = result
        interp._seg_iids = None

    def _thin(self) -> None:
        """Double the snapshot stride until back under budget.

        One doubling halves (roughly) the snapshot count, which is not
        necessarily enough — e.g. budget 32 exceeded at 33 thins to 17,
        but a budget lowered between runs, or accounting drift, can
        leave a single doubling still over.  Loop until under budget;
        termination is guaranteed because segment 0 is on-stride for
        every stride, so the count converges to 1 <= max_snapshots.
        """
        while self._snapshot_count > self.max_snapshots:
            self._stride *= 2
            for segment in self.segments:
                if segment.snapshot is not None and segment.index % self._stride:
                    segment.snapshot = None
                    self._snapshot_count -= 1


@dataclass
class RecordedRun:
    """A completed recording: the incremental-revalidation baseline.

    Everything needed to revalidate a flush/fence-fixed module without
    a full re-execution: the segments (with snapshots and executed-iid
    sets), the full baseline trace, the detection result, the chain
    dependency index, and checker-state forks memoized at each
    snapshot-bearing segment's trace offset.

    ``module_iids`` is the id set of the module *as recorded* — a fix
    anchored at an instruction outside it post-dates the recording, so
    the engine cannot reason about it and falls back to a full run.
    """

    module_fingerprint: str
    module_iids: frozenset
    segments: List[CallRecord]
    trace: PMTrace
    detection: DetectionResult
    chain_index: ChainIndex
    #: segment index -> checker state forked at that segment's trace_start
    forks: Dict[int, CheckerState]
    fuel: int
    #: volatile-target anchor executions (the synthesis side channel)
    vol_ops: Tuple[VolAnchorOp, ...] = ()
    #: completed callee spans, in execution (return) order
    spans: Tuple[CalleeSpan, ...] = ()
    #: True when the span record is complete (no exception ever unwound
    #: past an open callee during recording)
    spans_ok: bool = True

    def snapshot_segments(self) -> List[CallRecord]:
        return [s for s in self.segments if s.snapshot is not None]

    def first_affected_segment(self, anchor_iids: Set[int]) -> Optional[int]:
        """Index of the earliest segment executing any anchor iid."""
        for segment in self.segments:
            if segment.iids & anchor_iids:
                return segment.index
        return None

    def replay_base(self, first_affected: int) -> CallRecord:
        """The last snapshot-bearing segment at or before ``first_affected``."""
        base = None
        for segment in self.segments[: first_affected + 1]:
            if segment.snapshot is not None:
                base = segment
        if base is None:  # pragma: no cover - segment 0 always snapshots
            raise ValueError("no snapshot at or before segment "
                             f"{first_affected}")
        return base
