"""Unit tests for the pmemcheck-style durability checker."""

from repro.detect import BugKind, check_trace, pmemcheck_run
from repro.interp import Interpreter
from repro.ir import I64, ModuleBuilder, PTR


def detect(build, entry="main"):
    mb = ModuleBuilder("t")
    build(mb)
    return pmemcheck_run(mb.module, lambda i: i.call(entry))[0]


class TestBugKinds:
    def test_clean_program(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.flush(p)
            b.fence()
            b.ret(0)

        assert detect(build).bug_count == 0

    def test_missing_flush_and_fence(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.ret(0)

        result = detect(build)
        assert result.bug_count == 1
        assert result.bugs[0].kind is BugKind.MISSING_FLUSH_FENCE
        assert result.bugs[0].boundary.label == "exit"

    def test_missing_flush_with_later_fence(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.fence()  # a fence exists, so an inserted flush is ordered
            b.ret(0)

        result = detect(build)
        assert result.bug_count == 1
        assert result.bugs[0].kind is BugKind.MISSING_FLUSH

    def test_missing_fence(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.flush(p)  # weakly ordered, never fenced
            b.ret(0)

        result = detect(build)
        assert result.bug_count == 1
        assert result.bugs[0].kind is BugKind.MISSING_FENCE
        assert result.bugs[0].flush is not None

    def test_clflush_needs_no_fence(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.flush(p, "clflush")  # strongly ordered
            b.ret(0)

        assert detect(build).bug_count == 0

    def test_volatile_stores_never_flagged(self):
        def build(mb):
            b = mb.function("main", [], I64)
            v = b.call("vol_alloc", [64], PTR)
            b.store(1, v)
            b.ret(0)

        assert detect(build).bug_count == 0


class TestBoundaries:
    def test_checkpoint_is_a_boundary(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.call("checkpoint", [])  # bug observed here...
            b.flush(p)
            b.fence()  # ...even though it is fixed later
            b.ret(0)

        result = detect(build)
        assert result.bug_count == 1
        assert result.bugs[0].boundary.label == "ckpt"

    def test_store_after_last_boundary_flagged_at_exit(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.flush(p)
            b.fence()
            b.call("checkpoint", [])
            b.store(2, p)  # never persisted before exit
            b.ret(0)

        result = detect(build)
        assert result.bug_count == 1
        assert result.bugs[0].boundary.label == "exit"


class TestReportGranularity:
    def test_loop_occurrences_deduplicated(self):
        def build(mb):
            b = mb.function("main", [("n", I64)], I64)
            p = b.call("pm_alloc", [1024], PTR)
            i = b.alloca(8)
            b.store(0, i)
            cond = b.new_block("cond")
            body = b.new_block("body")
            done = b.new_block("done")
            b.jmp(cond)
            b.position_at_end(cond)
            b.br(b.icmp("ult", b.load(i), b.function.args[0]), body, done)
            b.position_at_end(body)
            b.store(7, b.gep(p, b.mul(b.load(i), 64)))
            b.store(b.add(b.load(i), 1), i)
            b.jmp(cond)
            b.position_at_end(done)
            b.ret(0)

        mb = ModuleBuilder("t")
        build(mb)
        result, _, _ = pmemcheck_run(mb.module, lambda it: it.call("main", [5]))
        assert result.bug_count == 1
        assert result.bugs[0].occurrences == 5

    def test_distinct_call_paths_are_distinct_bugs(self):
        def build(mb):
            b = mb.function("setter", [("p", PTR)], I64)
            b.store(9, b.function.args[0])
            b.ret(0)
            b = mb.function("main", [], I64)
            p1 = b.call("pm_alloc", [64], PTR)
            p2 = b.call("pm_alloc", [64], PTR)
            b.call("setter", [p1], I64)
            b.call("setter", [p2], I64)
            b.ret(0)

        result = detect(build)
        assert result.bug_count == 2  # same store, two call sites

    def test_same_path_same_bug(self):
        def build(mb):
            b = mb.function("setter", [("p", PTR)], I64)
            b.store(9, b.function.args[0])
            b.ret(0)
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.call("setter", [p], I64)
            b.call("setter", [p], I64)
            b.ret(0)

        # Two calls from two *different* call sites still count as two
        # paths (distinct fix locations), even with the same pointer.
        assert detect(build).bug_count == 2


class TestPerfDiagnostics:
    def test_redundant_flush_reported(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.flush(p)  # nothing to flush
            b.ret(0)

        result = detect(build)
        assert result.bug_count == 0
        assert len(result.perf) == 1

    def test_summary_mentions_everything(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.ret(0)

        text = detect(build).summary()
        assert "missing-flush&fence" in text
