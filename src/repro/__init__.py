"""repro — a full reproduction of *Hippocrates: Healing Persistent
Memory Bugs without Doing Any Harm* (Neal, Quinn, Kasikci; ASPLOS 2021).

Subpackages
-----------

- :mod:`repro.ir` — LLVM-like IR (the program representation)
- :mod:`repro.memory` — PM hardware model (cache lines, flushes, fences,
  crash states)
- :mod:`repro.interp` — IR interpreter with a cycle-cost model
- :mod:`repro.trace` — pmemcheck-style PM operation traces
- :mod:`repro.detect` — PM durability-bug finders (pmemcheck / PMTest)
- :mod:`repro.analysis` — call graphs, Andersen points-to, PM classifiers
- :mod:`repro.core` — **Hippocrates**, the automated bug fixer
- :mod:`repro.apps` — evaluation targets written in the IR (mini-PMDK,
  a Redis-like KV store, P-CLHT, a memcached-like cache)
- :mod:`repro.corpus` — the bug study (Fig. 1) and 23 seeded,
  reproducible durability bugs with developer-fix metadata
- :mod:`repro.workloads` — YCSB workload generation
- :mod:`repro.bench` — harness utilities and table/figure renderers
"""

__version__ = "1.0.0"

from . import analysis, apps, bench, core, corpus, detect, interp, ir, memory, trace, workloads

__all__ = [
    "analysis",
    "apps",
    "bench",
    "core",
    "corpus",
    "detect",
    "interp",
    "ir",
    "memory",
    "trace",
    "workloads",
    "__version__",
]
