"""YCSB workload generation and execution (the Fig. 4 driver).

Implements the standard core workloads over our key-value interface:

=========  =========================================  ============
workload   mix                                        distribution
=========  =========================================  ============
Load       100% insert                                sequential
A          50% read / 50% update                      zipfian
B          95% read / 5% update                       zipfian
C          100% read                                  zipfian
D          95% read / 5% insert                       latest
E          95% scan / 5% insert                       zipfian
F          50% read / 50% read-modify-write           zipfian
=========  =========================================  ============

Keys are ``user<zero-padded index>`` (YCSB's format); values are
deterministic bytes of a fixed size.  Generation is separated from
execution so the same operation list can drive different builds of the
store (the three Redis variants).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..apps.kvstore import KVStore
from .zipf import LatestGenerator, ScrambledZipfianGenerator, UniformGenerator

READ = "read"
UPDATE = "update"
INSERT = "insert"
SCAN = "scan"
RMW = "rmw"


@dataclass(frozen=True)
class WorkloadSpec:
    """Operation mix of one core workload."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"  # zipfian | latest | uniform

    def proportions(self) -> List:
        return [
            (READ, self.read),
            (UPDATE, self.update),
            (INSERT, self.insert),
            (SCAN, self.scan),
            (RMW, self.rmw),
        ]


#: The YCSB core workloads (A-F).
CORE_WORKLOADS: Dict[str, WorkloadSpec] = {
    "A": WorkloadSpec("A", read=0.5, update=0.5),
    "B": WorkloadSpec("B", read=0.95, update=0.05),
    "C": WorkloadSpec("C", read=1.0),
    "D": WorkloadSpec("D", read=0.95, insert=0.05, distribution="latest"),
    "E": WorkloadSpec("E", scan=0.95, insert=0.05),
    "F": WorkloadSpec("F", read=0.5, rmw=0.5),
}

#: Workload order as reported in Fig. 4.
FIG4_ORDER = ["Load", "A", "B", "C", "D", "E", "F"]


@dataclass(frozen=True)
class Operation:
    """One client request."""

    kind: str
    key: bytes = b""
    value: bytes = b""
    scan_length: int = 0


def make_key(index: int) -> bytes:
    return f"user{index:012d}".encode()


def make_value(index: int, size: int) -> bytes:
    pattern = f"v{index:08d}-".encode()
    return (pattern * (size // len(pattern) + 1))[:size]


def generate_load(record_count: int, value_size: int = 96) -> List[Operation]:
    """The Load phase: insert every record once."""
    return [
        Operation(INSERT, make_key(i), make_value(i, value_size))
        for i in range(record_count)
    ]


def generate_run(
    spec: WorkloadSpec,
    record_count: int,
    operation_count: int,
    value_size: int = 96,
    seed: int = 42,
    max_scan_length: int = 8,
) -> List[Operation]:
    """One run phase: ``operation_count`` requests drawn per the spec."""
    rng = random.Random(seed)
    if spec.distribution == "latest":
        chooser = LatestGenerator(record_count, rng)
    elif spec.distribution == "uniform":
        chooser = UniformGenerator(record_count, rng)
    else:
        chooser = ScrambledZipfianGenerator(record_count, rng)

    next_insert = record_count
    operations: List[Operation] = []
    for _ in range(operation_count):
        point = rng.random()
        cumulative = 0.0
        kind = READ
        for candidate, weight in spec.proportions():
            cumulative += weight
            if point < cumulative:
                kind = candidate
                break

        if kind == INSERT:
            index = next_insert
            next_insert += 1
            if isinstance(chooser, LatestGenerator):
                chooser.advance()
            operations.append(
                Operation(INSERT, make_key(index), make_value(index, value_size))
            )
            continue
        index = chooser.next() % max(1, next_insert)
        if kind == READ:
            operations.append(Operation(READ, make_key(index)))
        elif kind == UPDATE:
            operations.append(
                Operation(UPDATE, make_key(index), make_value(index + 1, value_size))
            )
        elif kind == RMW:
            operations.append(
                Operation(RMW, make_key(index), make_value(index + 2, value_size))
            )
        else:  # SCAN
            operations.append(
                Operation(
                    SCAN,
                    make_key(index),
                    scan_length=1 + rng.randrange(max_scan_length),
                )
            )
    return operations


@dataclass
class RunResult:
    """Execution outcome of one operation list."""

    operations: int
    cycles: int
    steps: int
    #: sanity counters (hits prove the workload touched real data)
    read_hits: int = 0
    read_misses: int = 0

    @property
    def throughput(self) -> float:
        """Operations per million simulated cycles (Fig. 4's y-axis)."""
        if self.cycles == 0:
            return 0.0
        return self.operations / (self.cycles / 1_000_000)


def execute(store: KVStore, operations: List[Operation]) -> RunResult:
    """Run an operation list against a KV store, measuring cycles."""
    interp = store.interp
    start_cycles = interp.costs.cycles
    start_steps = interp.steps
    hits = misses = 0
    for op in operations:
        if op.kind == INSERT or op.kind == UPDATE:
            store.put(op.key, op.value)
        elif op.kind == READ:
            if store.get(op.key) is None:
                misses += 1
            else:
                hits += 1
        elif op.kind == RMW:
            value = store.get(op.key)
            store.put(op.key, op.value if value is None else op.value)
        else:  # SCAN
            store.scan(hash(op.key) & 0xFFFFFFFF, op.scan_length)
    return RunResult(
        operations=len(operations),
        cycles=interp.costs.cycles - start_cycles,
        steps=interp.steps - start_steps,
        read_hits=hits,
        read_misses=misses,
    )
