"""Unit tests for the IR stdlib (memcpy/memset/memcmp)."""

import pytest

from repro.apps.stdlib import add_stdlib
from repro.interp import Interpreter
from repro.ir import I64, ModuleBuilder, verify_module


@pytest.fixture
def stdlib_interp():
    mb = ModuleBuilder("std")
    add_stdlib(mb)
    verify_module(mb.module)
    return Interpreter(mb.module)


def alloc_with(interp, data: bytes, extra: int = 0) -> int:
    addr = interp.machine.space.alloc_vol(len(data) + extra + 16)
    interp.machine.space.write_bytes(addr, data)
    return addr


class TestMemcpy:
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 15, 16, 63, 100])
    def test_copies_exact_bytes(self, stdlib_interp, n):
        payload = bytes((i * 37 + 5) % 256 for i in range(n))
        src = alloc_with(stdlib_interp, payload)
        dst = alloc_with(stdlib_interp, b"\xEE" * (n + 8))
        stdlib_interp.call("memcpy", [dst, src, n])
        assert stdlib_interp.machine.space.read_bytes(dst, n) == payload
        # the byte after the copy is untouched
        assert stdlib_interp.machine.space.read_bytes(dst + n, 1) == b"\xEE"

    def test_copy_into_pm(self, stdlib_interp):
        src = alloc_with(stdlib_interp, b"persist me!!")
        dst = stdlib_interp.machine.space.alloc_pm(32)
        stdlib_interp.call("memcpy", [dst, src, 12])
        assert stdlib_interp.machine.space.read_bytes(dst, 12) == b"persist me!!"
        # PM stores were traced
        assert len(stdlib_interp.machine.trace.stores()) > 0


class TestMemset:
    @pytest.mark.parametrize("n", [0, 1, 8, 13, 64])
    def test_fills(self, stdlib_interp, n):
        dst = alloc_with(stdlib_interp, b"\x11" * (n + 8))
        stdlib_interp.call("memset", [dst, 0xAB, n])
        assert stdlib_interp.machine.space.read_bytes(dst, n) == b"\xAB" * n
        assert stdlib_interp.machine.space.read_bytes(dst + n, 1) == b"\x11"

    def test_byte_truncation(self, stdlib_interp):
        dst = alloc_with(stdlib_interp, b"\x00" * 16)
        stdlib_interp.call("memset", [dst, 0x1FF, 8])
        assert stdlib_interp.machine.space.read_bytes(dst, 8) == b"\xFF" * 8


class TestMemcmp:
    def test_equal(self, stdlib_interp):
        a = alloc_with(stdlib_interp, b"hello world pad!")
        b = alloc_with(stdlib_interp, b"hello world pad!")
        assert stdlib_interp.call("memcmp", [a, b, 16]).value == 0

    @pytest.mark.parametrize("pos", [0, 3, 7, 8, 12, 15])
    def test_difference_detected_anywhere(self, stdlib_interp, pos):
        data = bytearray(b"hello world pad!")
        a = alloc_with(stdlib_interp, bytes(data))
        data[pos] ^= 0xFF
        b = alloc_with(stdlib_interp, bytes(data))
        assert stdlib_interp.call("memcmp", [a, b, 16]).value == 1

    def test_zero_length_equal(self, stdlib_interp):
        a = alloc_with(stdlib_interp, b"x")
        b = alloc_with(stdlib_interp, b"y")
        assert stdlib_interp.call("memcmp", [a, b, 0]).value == 0
