"""IRBuilder: the fluent construction API for writing programs in the IR.

Every application in :mod:`repro.apps` — the mini-PMDK, the Redis-like
key-value store, P-CLHT, and the memcached-like cache — is written
against this builder.  It mirrors LLVM's ``IRBuilder``: it tracks an
insertion point (a basic block) and emits one instruction per call,
assigning fresh value names and debug locations.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence, Union

from ..errors import IRError
from .basicblock import BasicBlock
from .debuginfo import DebugLoc, LineAllocator
from .function import Function
from .instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Fence,
    Flush,
    Gep,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    Trap,
)
from .module import Module
from .types import I64, Type, VOID
from .values import Constant, Value

#: Operand values may be given as plain ints; they are wrapped as i64
#: constants (or as constants of an explicitly provided type).
Operand = Union[Value, int]


class IRBuilder:
    """Builds instructions into a current basic block.

    :param function: the function being built.
    :param lines: optional shared :class:`LineAllocator`; by default a
        fresh allocator per function source file is used, so each emitted
        instruction gets its own pseudo source line.
    """

    def __init__(self, function: Function, lines: Optional[LineAllocator] = None):
        self.function = function
        self.block: Optional[BasicBlock] = None
        self.lines = lines or LineAllocator(function.source_file)
        self._name_counter = itertools.count()
        self._explicit_loc: Optional[DebugLoc] = None

    # -- positioning -------------------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> "IRBuilder":
        self.block = block
        return self

    def new_block(self, name: str = "") -> BasicBlock:
        return self.function.add_block(name)

    def at_new_block(self, name: str = "") -> BasicBlock:
        """Create a block and position the builder at its end."""
        block = self.new_block(name)
        self.position_at_end(block)
        return block

    # -- debug locations ----------------------------------------------------------

    def set_loc(self, loc: Optional[DebugLoc]) -> None:
        """Pin subsequent instructions to an explicit location.

        Pass ``None`` to return to automatic per-instruction lines.
        """
        self._explicit_loc = loc

    def _next_loc(self) -> DebugLoc:
        if self._explicit_loc is not None:
            return self._explicit_loc
        return self.lines.next()

    # -- emission helpers -----------------------------------------------------------

    def _emit(self, instr: Instruction) -> Instruction:
        if self.block is None:
            raise IRError("builder has no insertion block")
        instr.loc = self._next_loc()
        if not instr.type.is_void and not instr.name:
            instr.name = f"t{next(self._name_counter)}"
        self.block.append(instr)
        return instr

    @staticmethod
    def _value(operand: Operand, type_: Type = I64) -> Value:
        if isinstance(operand, int):
            return Constant(operand, type_)
        return operand

    # -- memory ------------------------------------------------------------------------

    def alloca(self, size: int, name: str = "") -> Alloca:
        return self._emit(Alloca(size, name))  # type: ignore[return-value]

    def load(self, ptr: Value, type_: Type = I64, name: str = "") -> Load:
        return self._emit(Load(ptr, type_, name))  # type: ignore[return-value]

    def store(
        self, value: Operand, ptr: Value, type_: Type = I64, nontemporal: bool = False
    ) -> Store:
        return self._emit(
            Store(self._value(value, type_), ptr, nontemporal)
        )  # type: ignore[return-value]

    def gep(self, base: Value, offset: Operand, name: str = "") -> Gep:
        return self._emit(Gep(base, self._value(offset), name))  # type: ignore[return-value]

    # -- arithmetic -----------------------------------------------------------------------

    def binop(self, op: str, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        lhs_v = self._value(lhs)
        rhs_v = self._value(rhs, lhs_v.type)
        return self._emit(BinOp(op, lhs_v, rhs_v, name))  # type: ignore[return-value]

    def add(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("mul", lhs, rhs, name)

    def udiv(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("udiv", lhs, rhs, name)

    def urem(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("urem", lhs, rhs, name)

    def and_(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("lshr", lhs, rhs, name)

    def icmp(self, pred: str, lhs: Operand, rhs: Operand, name: str = "") -> ICmp:
        lhs_v = self._value(lhs)
        rhs_v = self._value(rhs, lhs_v.type)
        return self._emit(ICmp(pred, lhs_v, rhs_v, name))  # type: ignore[return-value]

    def select(self, cond: Value, a: Operand, b: Operand, name: str = "") -> Select:
        a_v = self._value(a)
        b_v = self._value(b, a_v.type)
        return self._emit(Select(cond, a_v, b_v, name))  # type: ignore[return-value]

    def cast(self, kind: str, value: Value, to_type: Type, name: str = "") -> Cast:
        return self._emit(Cast(kind, value, to_type, name))  # type: ignore[return-value]

    # -- control flow ------------------------------------------------------------------------

    def br(self, cond: Value, then_block: BasicBlock, else_block: BasicBlock) -> Branch:
        return self._emit(Branch(cond, then_block, else_block))  # type: ignore[return-value]

    def jmp(self, target: BasicBlock) -> Jump:
        return self._emit(Jump(target))  # type: ignore[return-value]

    def ret(self, value: Optional[Operand] = None) -> Ret:
        value_v = None if value is None else self._value(value, self.function.return_type)
        return self._emit(Ret(value_v))  # type: ignore[return-value]

    def trap(self) -> Trap:
        return self._emit(Trap())  # type: ignore[return-value]

    def call(
        self,
        callee: str,
        args: Sequence[Operand] = (),
        type_: Type = VOID,
        name: str = "",
    ) -> Call:
        arg_values = [self._value(a) for a in args]
        return self._emit(Call(callee, arg_values, type_, name))  # type: ignore[return-value]

    # -- persistence ----------------------------------------------------------------------------

    def flush(self, ptr: Value, kind: str = "clwb") -> Flush:
        return self._emit(Flush(ptr, kind))  # type: ignore[return-value]

    def fence(self, kind: str = "sfence") -> Fence:
        return self._emit(Fence(kind))  # type: ignore[return-value]


class ModuleBuilder:
    """Convenience wrapper that builds a whole module function by function.

    Keeps one :class:`LineAllocator` per pseudo source file so that
    multiple functions written against the same "file" get disjoint,
    increasing line ranges — matching how a real multi-function C file
    maps onto lines.
    """

    def __init__(self, name: str = "module"):
        self.module = Module(name)
        self._allocators: Dict[str, LineAllocator] = {}

    def _allocator(self, source_file: str) -> LineAllocator:
        if source_file not in self._allocators:
            self._allocators[source_file] = LineAllocator(source_file)
        return self._allocators[source_file]

    def function(
        self,
        name: str,
        params: Sequence = (),
        return_type: Type = VOID,
        source_file: str = "",
    ) -> IRBuilder:
        """Declare a function and return a builder positioned at its entry."""
        fn = self.module.add_function(name, params, return_type, source_file)
        builder = IRBuilder(fn, self._allocator(fn.source_file))
        builder.at_new_block("entry")
        return builder

    def global_(
        self, name: str, size: int, space: str = "vol", initializer: bytes = None
    ):
        return self.module.add_global(name, size, space, initializer)
