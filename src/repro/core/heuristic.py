"""Phase 3: the hoisting heuristic (paper §4.3).

Decides, per bug, whether the intraprocedural fix should be converted
into an interprocedural one, and at which call site.  The candidate set
is the original PM-modifying store plus the call sites of every
function on the store's call stack, bounded above by the function
containing the durability boundary *I* (hoisting above *I*'s function
would require an extra fence before *I*, defeating the purpose).

Each candidate is scored as ``#PM aliases − #non-PM aliases`` of its
pointer argument(s) via Andersen points-to (see
:mod:`repro.analysis.aliasing`).  Call sites passing no pointer
arguments score −∞, *as do all their parents* (PM must be flowing via
globals, so hoisting buys nothing).  The highest score wins; ties go to
the innermost candidate (the store itself, when everything ties, which
yields an intraprocedural fix).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

from ..analysis.aliasing import PMClassification
from ..detect.reports import BugReport
from ..ir.instructions import Call, Store
from .locate import Locator


@dataclass
class Candidate:
    """One possible fix location for a bug."""

    #: the store itself (intraprocedural) or a call site (hoist target)
    instr: Union[Store, Call]
    #: index into the store event's stack; the store is the innermost
    stack_index: int
    score: float = 0.0

    @property
    def is_store(self) -> bool:
        return isinstance(self.instr, Store)


@dataclass
class HoistDecision:
    """Outcome of the heuristic for one bug."""

    bug: BugReport
    chosen: Candidate
    candidates: List[Candidate]

    @property
    def hoist(self) -> bool:
        return not self.chosen.is_store

    @property
    def hoist_depth(self) -> int:
        """How many functions above the PM modification the subprogram
        root sits (the paper's "implemented 1 function above").

        The fix (the retargeted call + trailing fence) lives in the
        function at ``stack_index``.  Depth 1 means the fix sits in the
        immediate caller of the function containing the store (the
        cloned subprogram root *is* the store's function); Listing 5's
        fix in ``foo`` is depth 2.
        """
        if not self.hoist:
            return 0
        store_index = len(self.bug.store.stack) - 1
        return store_index - self.chosen.stack_index


def _min_candidate_index(bug: BugReport) -> int:
    """The shallowest stack index at which hoisting is allowed.

    Call sites *above* the function containing the boundary *I* are
    excluded: a subprogram ending there could return after *I*, so its
    trailing fence would come too late (and an extra pre-*I* fence would
    be needed).  We find how deep the store's stack and the boundary's
    stack agree; call sites shallower than the boundary's own frame are
    off-limits.
    """
    store_stack = bug.store.stack
    boundary_stack = bug.boundary.stack
    if not boundary_stack or boundary_stack[-1].function not in {
        frame.function for frame in store_stack
    }:
        # Boundary in the host/exit or in an unrelated function: any
        # call site on the store's stack is fair game.
        return 0
    common = 0
    for store_frame, boundary_frame in zip(store_stack, boundary_stack):
        if store_frame.function != boundary_frame.function:
            break
        common += 1
    # The boundary function's frame is at index common-1; call sites at
    # that index (calls made *by* the boundary function) are allowed.
    return max(0, common - 1)


def evaluate_candidates(
    bug: BugReport,
    store: Store,
    locator: Locator,
    classifier: PMClassification,
) -> List[Candidate]:
    """Build and score the candidate list for one bug (innermost last)."""
    stack = bug.store.stack
    store_index = len(stack) - 1
    min_index = _min_candidate_index(bug)

    candidates: List[Candidate] = []
    for index in range(min_index, store_index):
        call = locator.locate_call_site(stack[index])
        if call is None:
            continue
        candidates.append(Candidate(instr=call, stack_index=index))
    candidates.append(Candidate(instr=store, stack_index=store_index))

    # Score call sites; apply the −∞-and-parents rule.
    poisoned_below = -math.inf  # indices < poisoned_below are poisoned
    for candidate in candidates:
        if candidate.is_store:
            candidate.score = classifier.score(candidate.instr.pointer)  # type: ignore[union-attr]
            continue
        call: Call = candidate.instr  # type: ignore[assignment]
        pointer_args = call.pointer_args()
        if not pointer_args:
            candidate.score = -math.inf
            poisoned_below = max(poisoned_below, candidate.stack_index)
        else:
            # Score each pointer argument and take the best: a call site
            # like memcpy(pm_dst, vol_src, n) is a good hoist target
            # because of its PM destination, regardless of the volatile
            # source also passed.
            candidate.score = max(classifier.score(arg) for arg in pointer_args)
    for candidate in candidates:
        if not candidate.is_store and candidate.stack_index < poisoned_below:
            candidate.score = -math.inf

    return candidates


def choose_fix_location(
    bug: BugReport,
    store: Store,
    locator: Locator,
    classifier: PMClassification,
) -> HoistDecision:
    """Run the heuristic for one bug."""
    candidates = evaluate_candidates(bug, store, locator, classifier)
    best = max(candidates, key=lambda c: (c.score, c.stack_index))
    return HoistDecision(bug=bug, chosen=best, candidates=candidates)
