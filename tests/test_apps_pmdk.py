"""Unit tests for mini-PMDK (libpmem + objpool)."""

import pytest

from repro.apps.pmdk_mini import build_pmdk_module
from repro.apps.pmdk_mini.objpool import (
    OFF_HEAP_TOP,
    OFF_LAYOUT,
    OFF_MAGIC,
    POOL_MAGIC,
)
from repro.detect import check_trace
from repro.interp import Interpreter
from repro.ir import I64, PTR, verify_module


def fresh(seeds=()):
    mb = build_pmdk_module(seeds=seeds)
    b = mb.function("get_root", [], PTR)
    b.ret(b.call("pm_root", [128], PTR))
    verify_module(mb.module)
    interp = Interpreter(mb.module)
    return mb.module, interp


def create_pool(interp, arena=1 << 16):
    layout = interp.machine.space.alloc_vol(16)
    interp.machine.space.write_bytes(layout, b"testlayout123456")
    interp.call("pool_create", [arena, layout, 16])
    return interp.call("get_root", []).value


class TestLibpmem:
    def test_pmem_persist_makes_range_durable(self):
        module, interp = fresh()
        root = create_pool(interp)
        addr = interp.call("pmalloc", [128]).value
        interp.machine.space.write_bytes(addr, b"A" * 100)
        # write via host; simulate the stores through the cache model
        interp.machine.cache.on_store(addr, 100, seq=999)
        interp.call("pmem_persist", [addr, 100])
        assert interp.machine.image.is_line_durable(addr)
        assert interp.machine.image.is_line_durable(addr + 64)

    def test_pmem_flush_covers_straddling_range(self):
        module, interp = fresh()
        create_pool(interp)
        addr = interp.call("pmalloc", [192]).value
        interp.machine.cache.on_store(addr + 60, 8, seq=1)  # straddles
        interp.call("pmem_flush", [addr + 60, 8])
        interp.call("pmem_drain", [])
        assert not interp.machine.cache.pending_lines()

    def test_pmem_memcpy_persist(self):
        module, interp = fresh()
        create_pool(interp)
        dst = interp.call("pmalloc", [64]).value
        src = interp.machine.space.alloc_vol(32)
        interp.machine.space.write_bytes(src, b"0123456789abcdef" * 2)
        interp.call("pmem_memcpy_persist", [dst, src, 32])
        assert interp.machine.space.read_bytes(dst, 32) == b"0123456789abcdef" * 2
        assert not interp.machine.cache.pending_lines()

    def test_pmem_memset_persist(self):
        module, interp = fresh()
        create_pool(interp)
        dst = interp.call("pmalloc", [64]).value
        interp.call("pmem_memset_persist", [dst, 0x5A, 48])
        assert interp.machine.space.read_bytes(dst, 48) == b"\x5A" * 48
        assert not interp.machine.cache.pending_lines()


class TestObjpool:
    def test_pool_create_writes_header(self):
        module, interp = fresh()
        root = create_pool(interp)
        space = interp.machine.space
        assert space.read_int(root + OFF_MAGIC, 8) == POOL_MAGIC
        assert space.read_bytes(root + OFF_LAYOUT, 10) == b"testlayout"

    def test_pmalloc_bump_and_alignment(self):
        module, interp = fresh()
        root = create_pool(interp)
        a = interp.call("pmalloc", [100]).value
        b = interp.call("pmalloc", [10]).value
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 100
        assert interp.machine.space.is_pm(a)
        top = interp.machine.space.read_int(root + OFF_HEAP_TOP, 8)
        assert top >= 100 + 10

    def test_clean_library_has_no_bugs(self):
        module, interp = fresh()
        create_pool(interp)
        obj = interp.call("pmalloc", [64]).value
        src = interp.machine.space.alloc_vol(64)
        interp.call("obj_alloc_construct", [src, 64])
        interp.call("redo_log_append", [src, 32])
        oid = interp.call("pmalloc", [16]).value
        interp.call("set_oid_persist", [oid, 1, 2])
        trace = interp.finish()
        assert check_trace(trace).bug_count == 0

    @pytest.mark.parametrize("seed", ["447", "452", "458", "459", "460", "461"])
    def test_each_seed_introduces_bugs(self, seed):
        module, interp = fresh(seeds=(seed,))
        create_pool(interp)
        src = interp.machine.space.alloc_vol(64)
        interp.call("pmalloc", [64])
        interp.call("obj_alloc_construct", [src, 64])
        interp.call("redo_log_append", [src, 32])
        oid = interp.call("pmalloc", [16]).value
        interp.call("set_oid_persist", [oid, 1, 2])
        trace = interp.finish()
        assert check_trace(trace).bug_count >= 1

    def test_unknown_seed_rejected(self):
        with pytest.raises(ValueError):
            build_pmdk_module(seeds=("9999",))

    def test_helpers_store_without_persisting(self):
        """set_flag/checksum_update/oid_write leave persistence to the
        caller (that is the point of the 940/943/460 bug classes)."""
        module, interp = fresh()
        create_pool(interp)
        obj = interp.call("pmalloc", [64]).value
        interp.call("set_flag", [obj, 5])
        interp.call("checksum_update", [obj, 77])
        assert interp.machine.space.read_int(obj, 8) == 5
        assert interp.machine.space.read_int(obj + 8, 8) == 77
        assert interp.machine.cache.pending_lines()  # nothing flushed
