#!/usr/bin/env python3
"""Quickstart: find and fix a persistent-memory durability bug.

Builds a tiny PM program with a missing flush (the paper's Listing 4
shape), finds the bug with the pmemcheck-style detector, repairs it
with Hippocrates, and revalidates — the complete Fig. 2 pipeline in
~40 lines of user code.

Run:  python examples/quickstart.py
"""

from repro.core import Hippocrates
from repro.detect import pmemcheck_run
from repro.ir import I64, ModuleBuilder, PTR, format_module


def build_buggy_program():
    """void main(): p = pm_alloc(64); *p = 42;  /* flush forgotten! */"""
    mb = ModuleBuilder("quickstart")
    b = mb.function("main", [], I64, source_file="quickstart.c")
    p = b.call("pm_alloc", [64], PTR)
    b.store(42, p)
    # BUG: the store is never flushed nor fenced; after a crash the 42
    # may exist only in the (lost) CPU cache.
    b.ret(0)
    return mb.module


def main():
    module = build_buggy_program()

    print("=== program under test ===")
    print(format_module(module))

    # 1. Run the workload under the PM bug finder.
    detection, trace, interp = pmemcheck_run(module, lambda i: i.call("main"))
    print("=== pmemcheck-style detection ===")
    print(detection.summary())
    assert detection.bug_count == 1

    # 2. Hand the trace to Hippocrates.
    report = Hippocrates(module, trace, interp.machine).fix()
    print("\n=== Hippocrates ===")
    print(report.summary())
    for fix in report.plan.fixes:
        print("  ", fix.describe())

    # 3. The fixed program.
    print("\n=== repaired program ===")
    print(format_module(module))

    # 4. Revalidate: the detector must find nothing.
    after, _, _ = pmemcheck_run(module, lambda i: i.call("main"))
    print("=== revalidation ===")
    print(after.summary())
    assert after.bug_count == 0
    print("\nquickstart OK: bug found, fixed, and revalidated clean")


if __name__ == "__main__":
    main()
