"""libc-style helpers written *in IR*.

``memcpy``/``memset``/``memcmp`` are deliberately IR functions rather
than intrinsics: the paper's central example is the store inside
``memcpy`` that must *not* be fixed intraprocedurally (the helper is
shared between volatile and persistent callers), and Hippocrates must
be able to clone it into ``memcpy_PM``.  Making them interpreter
intrinsics would hide exactly the code the paper operates on.

Copies run in 8-byte chunks with a byte tail — the realistic shape
(vectorized bulk + scalar remainder) and also what keeps interpreted
instruction counts sane.
"""

from __future__ import annotations

from ..ir.builder import ModuleBuilder
from ..ir.types import I8, I64, PTR

#: source-file tag used for all stdlib functions
STDLIB_FILE = "stdlib.c"


def add_memcpy(mb: ModuleBuilder) -> None:
    """``void memcpy(ptr dst, ptr src, i64 n)`` — 8-byte chunks + tail."""
    b = mb.function(
        "memcpy", [("dst", PTR), ("src", PTR), ("n", I64)], source_file=STDLIB_FILE
    )
    dst, src, n = b.function.args
    i_slot = b.alloca(8)
    b.store(0, i_slot)
    chunk_cond = b.new_block("chunk_cond")
    chunk_body = b.new_block("chunk_body")
    byte_cond = b.new_block("byte_cond")
    byte_body = b.new_block("byte_body")
    done = b.new_block("done")
    b.jmp(chunk_cond)

    b.position_at_end(chunk_cond)
    i = b.load(i_slot)
    remaining = b.sub(n, i)
    have_chunk = b.icmp("uge", remaining, 8)
    b.br(have_chunk, chunk_body, byte_cond)

    b.position_at_end(chunk_body)
    i = b.load(i_slot)
    src_p = b.gep(src, i)
    dst_p = b.gep(dst, i)
    value = b.load(src_p, I64)
    b.store(value, dst_p, I64)
    b.store(b.add(i, 8), i_slot)
    b.jmp(chunk_cond)

    b.position_at_end(byte_cond)
    i = b.load(i_slot)
    more = b.icmp("ult", i, n)
    b.br(more, byte_body, done)

    b.position_at_end(byte_body)
    i = b.load(i_slot)
    src_p = b.gep(src, i)
    dst_p = b.gep(dst, i)
    value = b.load(src_p, I8)
    b.store(value, dst_p, I8)
    b.store(b.add(i, 1), i_slot)
    b.jmp(byte_cond)

    b.position_at_end(done)
    b.ret()


def add_memset(mb: ModuleBuilder) -> None:
    """``void memset(ptr p, i64 byte, i64 n)`` — 8-byte chunks + tail."""
    b = mb.function(
        "memset", [("p", PTR), ("byte", I64), ("n", I64)], source_file=STDLIB_FILE
    )
    p, byte, n = b.function.args
    # Replicate the byte across all 8 lanes.
    pattern = b.mul(b.and_(byte, 0xFF), 0x0101010101010101)
    i_slot = b.alloca(8)
    b.store(0, i_slot)
    chunk_cond = b.new_block("chunk_cond")
    chunk_body = b.new_block("chunk_body")
    byte_cond = b.new_block("byte_cond")
    byte_body = b.new_block("byte_body")
    done = b.new_block("done")
    b.jmp(chunk_cond)

    b.position_at_end(chunk_cond)
    i = b.load(i_slot)
    remaining = b.sub(n, i)
    have_chunk = b.icmp("uge", remaining, 8)
    b.br(have_chunk, chunk_body, byte_cond)

    b.position_at_end(chunk_body)
    i = b.load(i_slot)
    b.store(pattern, b.gep(p, i), I64)
    b.store(b.add(i, 8), i_slot)
    b.jmp(chunk_cond)

    b.position_at_end(byte_cond)
    i = b.load(i_slot)
    more = b.icmp("ult", i, n)
    b.br(more, byte_body, done)

    b.position_at_end(byte_body)
    i = b.load(i_slot)
    one_byte = b.cast("trunc", b.and_(byte, 0xFF), I8)
    b.store(one_byte, b.gep(p, i))
    b.store(b.add(i, 1), i_slot)
    b.jmp(byte_cond)

    b.position_at_end(done)
    b.ret()


def add_memcmp(mb: ModuleBuilder) -> None:
    """``i64 memcmp(ptr a, ptr b, i64 n)`` — 0 when equal, 1 otherwise.

    (Only equality matters to our apps; the 8-byte chunked comparison
    keeps key probes cheap.)
    """
    b = mb.function(
        "memcmp",
        [("a", PTR), ("b", PTR), ("n", I64)],
        return_type=I64,
        source_file=STDLIB_FILE,
    )
    a, bp, n = b.function.args
    i_slot = b.alloca(8)
    b.store(0, i_slot)
    chunk_cond = b.new_block("chunk_cond")
    chunk_body = b.new_block("chunk_body")
    byte_cond = b.new_block("byte_cond")
    byte_body = b.new_block("byte_body")
    equal = b.new_block("equal")
    differ = b.new_block("differ")
    b.jmp(chunk_cond)

    b.position_at_end(chunk_cond)
    i = b.load(i_slot)
    remaining = b.sub(n, i)
    have_chunk = b.icmp("uge", remaining, 8)
    b.br(have_chunk, chunk_body, byte_cond)

    b.position_at_end(chunk_body)
    i = b.load(i_slot)
    va = b.load(b.gep(a, i), I64)
    vb = b.load(b.gep(bp, i), I64)
    same = b.icmp("eq", va, vb)
    b.store(b.add(i, 8), i_slot)
    next_cond = b.new_block("chunk_next")
    b.br(same, next_cond, differ)
    b.position_at_end(next_cond)
    b.jmp(chunk_cond)

    b.position_at_end(byte_cond)
    i = b.load(i_slot)
    more = b.icmp("ult", i, n)
    b.br(more, byte_body, equal)

    b.position_at_end(byte_body)
    i = b.load(i_slot)
    va = b.load(b.gep(a, i), I8)
    vb = b.load(b.gep(bp, i), I8)
    same = b.icmp("eq", va, vb)
    b.store(b.add(i, 1), i_slot)
    next_byte = b.new_block("byte_next")
    b.br(same, next_byte, differ)
    b.position_at_end(next_byte)
    b.jmp(byte_cond)

    b.position_at_end(equal)
    b.ret(0)
    b.position_at_end(differ)
    b.ret(1)


def add_stdlib(mb: ModuleBuilder) -> None:
    """Add all stdlib helpers to a module under construction."""
    add_memcpy(mb)
    add_memset(mb)
    add_memcmp(mb)
