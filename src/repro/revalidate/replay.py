"""Replaying a driver from a materialized snapshot.

The driver function is re-invoked from scratch against a
:class:`ReplayInterpreter` whose machine was materialized from a
mid-run snapshot.  Calls the recording already executed are *skipped*:
the interpreter verifies the driver asks for the same function with the
same arguments (anything else is a :class:`ReplayDivergence`, which the
engine turns into a full-revalidation fallback) and returns the
recorded :class:`~repro.interp.interpreter.ExecutionResult` without
executing.  Once the skip list drains, execution proceeds normally from
the snapshot state, emitting trace events that continue the baseline
trace's sequence numbers.

Host-side driver effects before the replay point (e.g. a workload
wrapper staging request bytes into a volatile buffer) re-execute
against the restored machine; they are byte-idempotent by construction
(the same writes that produced the snapshot state), and the corpus
drivers never branch on call results beyond what the recorded results
reproduce.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional

from ..errors import ReproError
from ..interp.costs import CostModel
from ..interp.engine import FlatEngine
from ..interp.interpreter import ExecutionResult, Interpreter, Machine
from ..ir.module import Module
from .recording import CallRecord
from .snapshot import MachineSnapshot


class ReplayDivergence(ReproError):
    """The driver's calls no longer match the recording."""


class ReplayInterpreter(Interpreter):
    """An interpreter resuming mid-workload from a snapshot.

    ``skip`` lists the call records of segments *before* the replay
    point; those calls return their recorded results.  Fuel accounting
    matches a full run: the snapshot's consumed steps are subtracted
    from the budget, so a workload that would exhaust fuel in a full
    revalidation exhausts it here too.
    """

    def __init__(
        self,
        module: Module,
        machine: Machine,
        snapshot: MachineSnapshot,
        skip: Iterable[CallRecord],
        cost_model: Optional[CostModel] = None,
        fuel: int = 50_000_000,
        metrics=None,
    ):
        super().__init__(
            module,
            machine=machine,
            cost_model=cost_model,
            fuel=max(0, fuel - snapshot.steps),
            metrics=metrics,
        )
        self._skip = deque(skip)
        # Observable output accumulated before the replay point, so
        # emit-order inspection sees the full run's output.
        self.output.extend(snapshot.output)

    def call(self, fn_name: str, args: Optional[List[int]] = None) -> ExecutionResult:
        if self._skip:
            record = self._skip.popleft()
            actual_args = list(args or [])
            if (
                record.fn_name != fn_name
                or record.args != actual_args
                or record.result is None
            ):
                raise ReplayDivergence(
                    f"driver diverged at call {record.index}: recorded "
                    f"@{record.fn_name}({record.args}), replay asked for "
                    f"@{fn_name}({actual_args})"
                )
            return record.result
        return super().call(fn_name, args)

    @property
    def skipped_remaining(self) -> int:
        return len(self._skip)


class FlatReplayInterpreter(ReplayInterpreter, FlatEngine):
    """Snapshot replay on the flat engine.

    Pure mixin composition: :class:`ReplayInterpreter` contributes only
    the ``call()`` skip-list logic, :class:`FlatEngine` the compiled
    execution core, so replay-from-snapshot runs the same code path the
    recording did under the flat engine."""


def replay_class(engine: str):
    """The replay interpreter class for an engine kind."""
    if engine == "flat":
        return FlatReplayInterpreter
    if engine == "reference":
        return ReplayInterpreter
    raise ValueError(f"unknown engine {engine!r}")
