"""Unit tests for the hoisting heuristic (phase 3)."""

import math

from repro.analysis import classify_full_aa
from repro.core import Locator, choose_fix_location, evaluate_candidates
from repro.detect import pmemcheck_run
from repro.ir import I64, ModuleBuilder, PTR

from conftest import drive_main


def _setup(listing5):
    module, detection, trace, interp = listing5
    bug = detection.bugs[0]
    locator = Locator(module)
    store = locator.locate_store(bug.store)
    classifier = classify_full_aa(module)
    return module, bug, store, locator, classifier


class TestListing6Scenario:
    def test_candidate_scores(self, listing5):
        module, bug, store, locator, classifier = _setup(listing5)
        candidates = evaluate_candidates(bug, store, locator, classifier)
        by_kind = {
            ("store" if c.is_store else c.instr.callee): c.score
            for c in candidates
        }
        # Listing 6's published scores: store 0, update call site 0,
        # modify(pm_addr) call site +1.
        assert by_kind["store"] == 0
        assert by_kind["update"] == 0
        assert by_kind["modify"] == 1

    def test_chooses_modify_call_site(self, listing5):
        module, bug, store, locator, classifier = _setup(listing5)
        decision = choose_fix_location(bug, store, locator, classifier)
        assert decision.hoist
        assert decision.chosen.instr.callee == "modify"
        assert decision.hoist_depth == 2


class TestMinusInfinityRule:
    def test_parameterless_call_poisons_parents(self):
        mb = ModuleBuilder("t")
        table = mb.global_("table", 64, "pm")
        b = mb.function("bump", [], I64)  # PM via a global: no pointer args
        b.store(1, b.gep(table, 0))
        b.ret(0)
        b = mb.function("outer", [], I64)
        b.ret(b.call("bump", [], I64))
        b = mb.function("main", [], I64)
        b.call("outer", [], I64)
        b.ret(0)
        detection, trace, interp = pmemcheck_run(mb.module, drive_main)
        bug = detection.bugs[0]
        locator = Locator(mb.module)
        store = locator.locate_store(bug.store)
        classifier = classify_full_aa(mb.module)
        candidates = evaluate_candidates(bug, store, locator, classifier)
        call_scores = [c.score for c in candidates if not c.is_store]
        assert all(score == -math.inf for score in call_scores)
        decision = choose_fix_location(bug, store, locator, classifier)
        assert not decision.hoist  # falls back to the intraprocedural fix


class TestTieBreaking:
    def test_pure_pm_helper_stays_intraprocedural(self):
        """set_flag-style leaf used only on PM: scores tie at +1 and
        the innermost candidate (the store) wins -> intraprocedural."""
        mb = ModuleBuilder("t")
        b = mb.function("set_flag", [("obj", PTR)], I64)
        b.store(7, b.function.args[0])
        b.ret(0)
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.call("set_flag", [p], I64)
        b.ret(0)
        detection, trace, interp = pmemcheck_run(mb.module, drive_main)
        bug = detection.bugs[0]
        locator = Locator(mb.module)
        store = locator.locate_store(bug.store)
        classifier = classify_full_aa(mb.module)
        decision = choose_fix_location(bug, store, locator, classifier)
        assert not decision.hoist
        assert decision.hoist_depth == 0


class TestBoundaryBound:
    def test_candidates_stop_at_boundary_function(self):
        """Call sites above the function containing *I* are excluded."""
        mb = ModuleBuilder("t")
        b = mb.function("write", [("p", PTR)], I64)
        b.store(1, b.function.args[0])
        b.ret(0)
        b = mb.function("serve", [("p", PTR)], I64)
        # serve() is the function containing the checkpoint I.
        b.call("write", [b.function.args[0]], I64)
        b.call("checkpoint", [])
        b.ret(0)
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.call("serve", [p], I64)
        b.ret(0)
        detection, trace, interp = pmemcheck_run(mb.module, drive_main)
        bug = detection.bugs[0]
        locator = Locator(mb.module)
        store = locator.locate_store(bug.store)
        classifier = classify_full_aa(mb.module)
        candidates = evaluate_candidates(bug, store, locator, classifier)
        callees = [c.instr.callee for c in candidates if not c.is_store]
        # serve's call site in main is off-limits; write's call site
        # (inside serve) is allowed.
        assert callees == ["write"]

    def test_exit_boundary_allows_whole_stack(self, listing5):
        module, bug, store, locator, classifier = _setup(listing5)
        candidates = evaluate_candidates(bug, store, locator, classifier)
        callees = [c.instr.callee for c in candidates if not c.is_store]
        assert callees == ["foo", "modify", "update"]


class TestCallSiteScoring:
    def test_memcpy_shape_uses_best_pointer_arg(self):
        """memcpy(pm_dst, vol_src): the PM destination dominates."""
        mb = ModuleBuilder("t")
        b = mb.function("copy", [("dst", PTR), ("src", PTR)], I64)
        b.store(b.load(b.function.args[1]), b.function.args[0])
        b.ret(0)
        b = mb.function("main", [], I64)
        pm = b.call("pm_alloc", [64], PTR)
        vol = b.call("vol_alloc", [64], PTR)
        b.call("copy", [vol, vol], I64)  # volatile use
        b.call("copy", [pm, vol], I64)  # persistent use (buggy)
        b.ret(0)
        detection, trace, interp = pmemcheck_run(mb.module, drive_main)
        bug = detection.bugs[0]
        locator = Locator(mb.module)
        store = locator.locate_store(bug.store)
        classifier = classify_full_aa(mb.module)
        decision = choose_fix_location(bug, store, locator, classifier)
        assert decision.hoist
        assert decision.chosen.instr.callee == "copy"
        # it picked the PM call site, not the volatile one
        assert decision.chosen.instr.args[0].type.is_pointer
        assert classifier.score(decision.chosen.instr.args[0]) == 1
