"""E2 — §6.1 Effectiveness: fix all 23 reproduced bugs and revalidate.

The paper: "Hippocrates automatically repairs all 23 bugs we find and
reproduce. We validate ... by re-running pmemcheck against the repaired
programs."  The benchmark kernel is one full detect+fix+revalidate
cycle on the P-CLHT target.
"""

from repro.bench import effectiveness_table, run_case
from repro.corpus import pclht_case

from conftest import save_table


def test_effectiveness_all_23_bugs(benchmark, effectiveness_outcomes):
    outcomes = effectiveness_outcomes
    save_table("effectiveness.txt", effectiveness_table(outcomes))

    # 13 cases covering 23 bugs: 11 PMDK issues + 2 P-CLHT + 10 memcached.
    assert len(outcomes) == 13
    pmdk = [o for o in outcomes if o.case.system == "PMDK"]
    assert len(pmdk) == 11
    total_issue_bugs = (
        len(pmdk)
        + [o for o in outcomes if o.case.case_id == "P-CLHT"][0].reports_found
        + [o for o in outcomes if o.case.case_id == "memcached-pm"][0].reports_found
    )
    assert total_issue_bugs == 23

    for outcome in outcomes:
        assert outcome.reports_found == outcome.case.expected_reports
        assert outcome.reports_after_fix == 0, outcome.case.case_id
        assert outcome.fixed

    # Benchmark kernel: one complete repair cycle.
    benchmark(lambda: run_case(pclht_case()))
