"""Ablation — what the hoisting heuristic is worth (DESIGN.md §5).

Sweeps the volatile:persistent call ratio of a shared helper and
measures the run-time cost of the intraprocedural fix (flush inside the
helper, paid by *every* caller) vs the hoisted fix (clone + call-site
fence, paid only by persistent callers).  The intraprocedural penalty
must grow linearly with the volatile traffic while the hoisted cost
stays flat — the quantitative version of the paper's §3.2 argument.
"""

from repro.core import Hippocrates
from repro.detect import pmemcheck_run
from repro.interp import Interpreter
from repro.ir import I64, ModuleBuilder, PTR

from conftest import save_table


def build_program(volatile_calls: int):
    """A helper called ``volatile_calls`` times on DRAM and once on PM."""
    mb = ModuleBuilder(f"sweep{volatile_calls}")
    b = mb.function("fill", [("p", PTR), ("n", I64)], source_file="sweep.c")
    p, n = b.function.args
    i_slot = b.alloca(8)
    b.store(0, i_slot)
    cond = b.new_block("cond")
    body = b.new_block("body")
    done = b.new_block("done")
    b.jmp(cond)
    b.position_at_end(cond)
    b.br(b.icmp("ult", b.load(i_slot), n), body, done)
    b.position_at_end(body)
    i = b.load(i_slot)
    b.store(i, b.gep(p, b.mul(i, 8)))
    b.store(b.add(i, 1), i_slot)
    b.jmp(cond)
    b.position_at_end(done)
    b.ret()

    b = mb.function("main", [], I64, source_file="sweep.c")
    vol = b.call("vol_alloc", [512], PTR)
    pm = b.call("pm_alloc", [512], PTR)
    for _ in range(volatile_calls):
        b.call("fill", [vol, 32])
    b.call("fill", [pm, 32])
    b.fence()
    b.ret(0)
    return mb.module


def fixed_cost(volatile_calls: int, heuristic: str) -> int:
    module = build_program(volatile_calls)
    _, trace, interp = pmemcheck_run(module, lambda i: i.call("main"))
    Hippocrates(module, trace, interp.machine, heuristic=heuristic).fix()
    rerun = Interpreter(module)
    rerun.call("main")
    return rerun.costs.cycles


def test_hoisting_value_grows_with_volatile_traffic(benchmark):
    lines = ["volatile_calls  intra_cycles  hoisted_cycles  penalty"]
    penalties = []
    for volatile_calls in (0, 2, 4, 8, 16):
        intra = fixed_cost(volatile_calls, "off")
        hoisted = fixed_cost(volatile_calls, "full")
        penalty = intra / hoisted
        penalties.append((volatile_calls, penalty))
        lines.append(
            f"{volatile_calls:14d}  {intra:12d}  {hoisted:14d}  {penalty:7.2f}x"
        )
    save_table("ablation_heuristic.txt", "\n".join(lines))

    # The hoisted build never loses, and the intraprocedural penalty
    # increases monotonically with volatile traffic.
    ratios = [p for _, p in penalties]
    assert all(r >= 0.99 for r in ratios)
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 2.0  # heavy volatile sharing: multi-x penalty

    benchmark(lambda: fixed_cost(4, "full"))


def test_hoisted_and_intra_fixes_equally_correct(benchmark):
    """The ablation changes cost only: both modes are pmemcheck-clean."""

    def both_clean():
        for heuristic in ("off", "full"):
            module = build_program(4)
            _, trace, interp = pmemcheck_run(module, lambda i: i.call("main"))
            Hippocrates(module, trace, interp.machine, heuristic=heuristic).fix()
            after, _, _ = pmemcheck_run(module, lambda i: i.call("main"))
            assert after.bug_count == 0
        return True

    assert benchmark(both_clean)
