"""E6 — §6.4: impact of persistent subprogram clones on binary size.

The paper: +105 lines of IR on Redis (+0.013% of a 203-KLOC program),
thanks to clone reuse.  Our Redis analog is ~500 IR instructions, so
the meaningful shape checks are *absolute*: the insertion count is a
few dozen instructions, clone reuse keeps the clone count at one
(memcpy_PM is shared by all three hoisted call sites), and disabling
reuse would have tripled it.
"""

from repro.bench import REDIS_FULL, build_redis_variant, fig6_table

from conftest import save_table


def test_fig6_code_bloat(benchmark):
    module, report = benchmark(lambda: build_redis_variant("full"))
    save_table("fig6_code_bloat.txt", fig6_table(report))

    assert report.inserted_instructions < 120
    assert report.ir_size_after - report.ir_size_before == report.inserted_instructions

    # Clone reuse: three interprocedural fixes share one memcpy clone.
    assert report.interprocedural_count == 3
    assert len(report.functions_created) == 1
    assert report.functions_created[0].endswith("_PM")
    assert not any(name.endswith("_PM2") for name in module.functions)

    # Growth stays bounded (tiny module => percent is larger than the
    # paper's 0.013%, but still a small fraction of the program).
    assert report.ir_growth_percent < 20.0
